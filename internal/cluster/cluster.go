// Package cluster runs a full study job — trials x ranks x iterations x
// threads — over a workload model, producing the trace.Dataset that the
// analysis pipeline consumes, or — via RunStream — feeding per-iteration
// sample blocks straight to subscribed accumulators so aggregate-only
// studies never materialise the dataset at all.
//
// The default geometry mirrors the paper's experimental configuration on
// Manzano (Section 3.2): ten trials, eight processes per job, 48 threads
// per process (two 24-core Cascade Lake sockets), two hundred iterations —
// 768000 samples per application.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"earlybird/internal/dlb"
	"earlybird/internal/rng"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// Config is a study geometry plus master seed. The JSON form is the wire
// geometry of the serve layer's study service.
type Config struct {
	Trials     int    `json:"trials"`
	Ranks      int    `json:"ranks"`
	Iterations int    `json:"iterations"`
	Threads    int    `json:"threads"`
	Seed       uint64 `json:"seed"`
}

// Samples returns the total sample count of the geometry:
// trials x ranks x iterations x threads.
func (c Config) Samples() int { return c.Trials * c.Ranks * c.Iterations * c.Threads }

// DefaultConfig returns the paper's geometry (10 x 8 x 200 x 48).
func DefaultConfig() Config {
	return Config{Trials: 10, Ranks: 8, Iterations: 200, Threads: 48, Seed: 1}
}

// SmallConfig returns a reduced geometry for fast tests and examples:
// the same thread count (the statistics are per-48-thread sets) with
// fewer trials and iterations.
func SmallConfig() Config {
	return Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}
}

// HugeConfig returns a geometry with exactly 100x the paper's sample
// count — 10 trials, 32 ranks, 5000 iterations, 48 threads: 76.8 million
// samples. Materialised this is a 614 MB tensor; it exists to exercise
// the streaming pipeline, which analyses it in bounded memory (see
// examples/streaming-study).
func HugeConfig() Config {
	return Config{Trials: 10, Ranks: 32, Iterations: 5000, Threads: 48, Seed: 1}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Trials < 1 || c.Ranks < 1 || c.Iterations < 1 || c.Threads < 1 {
		return fmt.Errorf("cluster: non-positive geometry %+v", c)
	}
	return nil
}

// Run executes the study described by cfg over the model and returns the
// collected dataset. Process iterations are filled concurrently (one task
// per trial x rank); the result is deterministic in cfg.Seed regardless of
// scheduling because every (trial, rank, iteration) derives its own
// random stream.
func Run(model workload.Model, cfg Config) (*trace.Dataset, error) {
	return RunWorkers(model, cfg, 0)
}

// RunDLB is Run under a rebalancing policy: thread ownership shifts
// between ranks at iteration boundaries as the policy dictates, and the
// sample times reflect the shifted allocations (see RunStreamDLB).
func RunDLB(model workload.Model, cfg Config, policy dlb.Spec) (*trace.Dataset, error) {
	col, err := RunColumnarDLB(model, cfg, policy, 0)
	if err != nil {
		return nil, err
	}
	return col.Dataset(), nil
}

// RunWorkers is Run with an explicit bound on the number of fill
// goroutines; workers <= 0 means one per CPU. The campaign engine uses
// this to divide the machine between concurrently executing studies
// instead of oversubscribing it.
func RunWorkers(model workload.Model, cfg Config, workers int) (*trace.Dataset, error) {
	col, err := RunColumnar(model, cfg, workers)
	if err != nil {
		return nil, err
	}
	return col.Dataset(), nil
}

// RunColumnar executes the study into a columnar sink and returns the
// sealed store: the compact form the campaign engine caches. The dataset
// fingerprint is accumulated stripe-by-stripe while the samples are
// produced, so Seal pays no second pass over the data.
func RunColumnar(model workload.Model, cfg Config, workers int) (*trace.Columnar, error) {
	return RunColumnarDLB(model, cfg, dlb.Spec{}, workers)
}

// RunColumnarDLB is RunColumnar under a rebalancing policy.
func RunColumnarDLB(model workload.Model, cfg Config, policy dlb.Spec, workers int) (*trace.Columnar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sink := trace.NewSink(model.Name(), cfg.Trials, cfg.Ranks, cfg.Iterations, cfg.Threads)
	if _, err := RunStreamDLB(model, cfg, policy, workers, sink, nil); err != nil {
		return nil, err
	}
	return sink.Seal()
}

// BlockObserver consumes process-iteration sample blocks as they are
// produced by a streaming fill. The slice passed to ObserveBlock is only
// valid for the duration of the call and must not be mutated or retained.
type BlockObserver interface {
	ObserveBlock(trial, rank, iter int, times []float64)
}

// ProgressSink receives live fill telemetry from a streaming run — the
// observer-hook half of the TALP-style live performance tracking
// (internal/telemetry provides the tracker half). Implementations must
// be safe for concurrent use: every fill worker calls ObserveFill after
// every produced block.
//
// No-perturbation contract: a sink only ever receives counts and
// durations, never the sample slice, so it cannot perturb the result
// path; and a nil sink costs one predicted branch per block, so the
// detached hot path is unchanged (both properties are pinned by tests —
// golden fingerprints with/without a sink, and the bench gate).
type ProgressSink interface {
	// ObserveFill reports one produced process-iteration block: its
	// sample count and the worker time spent filling it.
	ObserveFill(samples int, busy time.Duration)
	// ObserveLend reports a DLB iteration boundary at which n ranks ran
	// on a lent (non-base) thread allocation. Never called under the
	// static policy.
	ObserveLend(n int)
}

// RunColumnarObserved is RunColumnarDLB with a live progress sink
// attached to the fill.
func RunColumnarObserved(model workload.Model, cfg Config, policy dlb.Spec, workers int, progress ProgressSink) (*trace.Columnar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sink := trace.NewSink(model.Name(), cfg.Trials, cfg.Ranks, cfg.Iterations, cfg.Threads)
	if _, err := RunStreamObserved(model, cfg, policy, workers, sink, nil, progress); err != nil {
		return nil, err
	}
	return sink.Seal()
}

// RunStream executes the study as a stream: per-iteration sample blocks
// are handed to subscribed observers the moment they are produced, and —
// when sink is nil — discarded immediately afterwards, so a study whose
// caller only needs aggregates runs in O(workers x threads) live sample
// memory regardless of geometry. A non-nil sink must match cfg's
// geometry; its stripes are filled in place (zero copy) rank-by-rank in
// parallel and the caller seals it afterwards.
//
// newObserver, when non-nil, is invoked once per fill worker; each worker
// feeds its own observer, so observers need no internal locking, and the
// created observers are returned for the caller to merge. The result is
// deterministic in cfg.Seed regardless of scheduling because every
// (trial, rank, iteration) derives its own random stream — but the
// partition of blocks across observers is scheduling-dependent, so
// observer state must be merge-order-independent (as the mergeable
// accumulators in stats and analysis are).
func RunStream(model workload.Model, cfg Config, workers int, sink *trace.Sink, newObserver func() BlockObserver) ([]BlockObserver, error) {
	return RunStreamDLB(model, cfg, dlb.Spec{}, workers, sink, newObserver)
}

// RunStreamDLB is RunStream under a dynamic load-balancing policy.
//
// The static policy (the zero Spec) takes the historical fill path —
// one task per (trial, rank), no cross-rank coupling — and is
// bit-identical to the pre-DLB runtime. Rebalancing policies couple the
// ranks of a trial through the balancer: at every iteration boundary the
// policy sees the trial's per-rank finish times and re-divides the
// trial's thread budget, and a rank running on alloc threads instead of
// its base complement has its (fixed-size) sample block scaled by
// base/alloc — the work-conserving model of running the same work on
// fewer or more cores. Those policies therefore fill trial-major: one
// task per trial, iterations in order, every rank of the iteration
// filled before the balancer decides the next one. Rebalancing is
// strictly per-trial, so trial-sharded federation remains exact under
// any policy, and determinism in cfg.Seed is preserved because the RNG
// coordinates of every sample block are unchanged — only the
// deterministic post-scale differs.
func RunStreamDLB(model workload.Model, cfg Config, policy dlb.Spec, workers int, sink *trace.Sink, newObserver func() BlockObserver) ([]BlockObserver, error) {
	return RunStreamObserved(model, cfg, policy, workers, sink, newObserver, nil)
}

// RunStreamObserved is RunStreamDLB with an optional live progress sink
// (see ProgressSink); nil detaches telemetry at zero cost.
func RunStreamObserved(model workload.Model, cfg Config, policy dlb.Spec, workers int, sink *trace.Sink, newObserver func() BlockObserver, progress ProgressSink) ([]BlockObserver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	resolved, err := policy.Resolve()
	if err != nil {
		return nil, err
	}
	if sink != nil {
		if sink.Trials() != cfg.Trials || sink.Ranks() != cfg.Ranks ||
			sink.Iterations() != cfg.Iterations || sink.Threads() != cfg.Threads {
			return nil, fmt.Errorf("cluster: sink geometry %dx%dx%dx%d does not match config %+v",
				sink.Trials(), sink.Ranks(), sink.Iterations(), sink.Threads(), cfg)
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if resolved.IsStatic() {
		return runStreamStatic(model, cfg, workers, sink, newObserver, progress)
	}
	return runStreamBalanced(model, cfg, resolved, workers, sink, newObserver, progress)
}

// stripeRange divides tasks contiguous stripes among workers: worker w
// owns [w*tasks/workers, (w+1)*tasks/workers), so every worker's share
// differs by at most one stripe and the assignment is a pure function
// of (tasks, workers) — no channel, no scheduler-dependent hand-off.
func stripeRange(tasks, workers, w int) (lo, hi int) {
	return w * tasks / workers, (w + 1) * tasks / workers
}

// runStreamStatic is the historical fill loop: one task per
// (trial, rank), blocks produced in iteration order within the task.
// Workers are stripe-pinned: worker w owns a contiguous range of the
// trial-major stripe index s = trial*Ranks + rank, fixed up front. The
// pinning removes the per-stripe channel rendezvous of the historical
// work queue and makes the block→observer partition deterministic; the
// samples themselves are unchanged because every (trial, rank,
// iteration) derives its own random stream regardless of which worker
// fills it.
func runStreamStatic(model workload.Model, cfg Config, workers int, sink *trace.Sink, newObserver func() BlockObserver, progress ProgressSink) ([]BlockObserver, error) {
	root := rng.New(cfg.Seed)

	tasks := cfg.Trials * cfg.Ranks
	if workers > tasks {
		workers = tasks
	}
	var wg sync.WaitGroup
	var observers []BlockObserver
	for w := 0; w < workers; w++ {
		var obs BlockObserver
		if newObserver != nil {
			obs = newObserver()
			observers = append(observers, obs)
		}
		lo, hi := stripeRange(tasks, workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []float64
			if sink == nil {
				scratch = make([]float64, cfg.Threads)
			}
			// The progress==nil loops below replicate the detached fill
			// byte-for-byte: hoisting the branch keeps the instrumented
			// variables out of the hot loop's register set, so telemetry
			// is zero-cost when no sink is attached (the bench gate
			// holds the line).
			for s := lo; s < hi; s++ {
				trial, rank := s/cfg.Ranks, s%cfg.Ranks
				switch {
				case sink != nil && progress == nil:
					sw := sink.Stripe(trial, rank)
					for i := 0; i < cfg.Iterations; i++ {
						out := sw.AppendWith(func(out []float64) {
							model.FillProcessIteration(root, trial, rank, i, out)
						})
						if obs != nil {
							obs.ObserveBlock(trial, rank, i, out)
						}
					}
				case sink == nil && progress == nil:
					for i := 0; i < cfg.Iterations; i++ {
						model.FillProcessIteration(root, trial, rank, i, scratch)
						if obs != nil {
							obs.ObserveBlock(trial, rank, i, scratch)
						}
					}
				case sink != nil:
					sw := sink.Stripe(trial, rank)
					for i := 0; i < cfg.Iterations; i++ {
						fillStart := time.Now()
						out := sw.AppendWith(func(out []float64) {
							model.FillProcessIteration(root, trial, rank, i, out)
						})
						if obs != nil {
							obs.ObserveBlock(trial, rank, i, out)
						}
						progress.ObserveFill(len(out), time.Since(fillStart))
					}
				default:
					for i := 0; i < cfg.Iterations; i++ {
						fillStart := time.Now()
						model.FillProcessIteration(root, trial, rank, i, scratch)
						if obs != nil {
							obs.ObserveBlock(trial, rank, i, scratch)
						}
						progress.ObserveFill(len(scratch), time.Since(fillStart))
					}
				}
			}
		}()
	}
	wg.Wait()
	return observers, nil
}

// runStreamBalanced fills trial-major under a resolved non-static
// policy: each task owns one whole trial (its balancer, its ranks'
// stripes) and walks iterations in order so the balancer always decides
// iteration i+1 from iteration i's finishes. Workers are pinned to
// contiguous trial ranges, like runStreamStatic's stripes; distinct
// trials still fill concurrently, and within a task the per-stripe
// append contract of trace.Sink is honoured because a single goroutine
// owns all of the trial's stripe writers.
func runStreamBalanced(model workload.Model, cfg Config, policy dlb.Spec, workers int, sink *trace.Sink, newObserver func() BlockObserver, progress ProgressSink) ([]BlockObserver, error) {
	root := rng.New(cfg.Seed)

	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	var wg sync.WaitGroup
	var observers []BlockObserver
	for w := 0; w < workers; w++ {
		var obs BlockObserver
		if newObserver != nil {
			obs = newObserver()
			observers = append(observers, obs)
		}
		lo, hi := stripeRange(cfg.Trials, workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []float64
			if sink == nil {
				scratch = make([]float64, cfg.Threads)
			}
			finish := make([]float64, cfg.Ranks)
			var writers []*trace.StripeWriter
			// As in runStreamStatic, the progress==nil iteration loop is
			// the pre-telemetry body verbatim so a detached fill pays
			// nothing for the hook.
			for trial := lo; trial < hi; trial++ {
				bal := policy.NewBalancer(cfg.Ranks, cfg.Threads)
				if sink != nil {
					writers = writers[:0]
					for r := 0; r < cfg.Ranks; r++ {
						writers = append(writers, sink.Stripe(trial, r))
					}
				}
				if progress == nil {
					for i := 0; i < cfg.Iterations; i++ {
						alloc := bal.Alloc(i)
						for r := 0; r < cfg.Ranks; r++ {
							t, r, i := trial, r, i
							var out []float64
							if sink != nil {
								out = writers[r].AppendWith(func(out []float64) {
									model.FillProcessIteration(root, t, r, i, out)
									scaleBlock(out, cfg.Threads, alloc[r])
								})
							} else {
								model.FillProcessIteration(root, t, r, i, scratch)
								scaleBlock(scratch, cfg.Threads, alloc[r])
								out = scratch
							}
							finish[r] = blockMax(out)
							if obs != nil {
								obs.ObserveBlock(t, r, i, out)
							}
						}
						bal.Observe(i, finish)
					}
					continue
				}
				for i := 0; i < cfg.Iterations; i++ {
					alloc := bal.Alloc(i)
					lent := 0
					for r := 0; r < cfg.Ranks; r++ {
						t, r, i := trial, r, i
						fillStart := time.Now()
						if alloc[r] != cfg.Threads {
							lent++
						}
						var out []float64
						if sink != nil {
							out = writers[r].AppendWith(func(out []float64) {
								model.FillProcessIteration(root, t, r, i, out)
								scaleBlock(out, cfg.Threads, alloc[r])
							})
						} else {
							model.FillProcessIteration(root, t, r, i, scratch)
							scaleBlock(scratch, cfg.Threads, alloc[r])
							out = scratch
						}
						finish[r] = blockMax(out)
						if obs != nil {
							obs.ObserveBlock(t, r, i, out)
						}
						progress.ObserveFill(len(out), time.Since(fillStart))
					}
					bal.Observe(i, finish)
					if lent > 0 {
						progress.ObserveLend(lent)
					}
				}
			}
		}()
	}
	wg.Wait()
	return observers, nil
}

// scaleBlock applies the work-conserving core-count model: the same
// block of work on alloc threads instead of base takes base/alloc times
// as long per sample.
func scaleBlock(out []float64, base, alloc int) {
	if alloc == base || alloc <= 0 {
		return
	}
	f := float64(base) / float64(alloc)
	for i := range out {
		out[i] *= f
	}
}

// blockMax returns the block's finish time: the max over its samples.
func blockMax(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MustRun is Run for known-good configurations; it panics on error.
func MustRun(model workload.Model, cfg Config) *trace.Dataset {
	d, err := Run(model, cfg)
	if err != nil {
		panic(err)
	}
	return d
}
