// Package cluster runs a full study job — trials x ranks x iterations x
// threads — over a workload model, producing the trace.Dataset that the
// analysis pipeline consumes.
//
// The default geometry mirrors the paper's experimental configuration on
// Manzano (Section 3.2): ten trials, eight processes per job, 48 threads
// per process (two 24-core Cascade Lake sockets), two hundred iterations —
// 768000 samples per application.
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"earlybird/internal/rng"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// Config is a study geometry plus master seed.
type Config struct {
	Trials     int
	Ranks      int
	Iterations int
	Threads    int
	Seed       uint64
}

// DefaultConfig returns the paper's geometry (10 x 8 x 200 x 48).
func DefaultConfig() Config {
	return Config{Trials: 10, Ranks: 8, Iterations: 200, Threads: 48, Seed: 1}
}

// SmallConfig returns a reduced geometry for fast tests and examples:
// the same thread count (the statistics are per-48-thread sets) with
// fewer trials and iterations.
func SmallConfig() Config {
	return Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Trials < 1 || c.Ranks < 1 || c.Iterations < 1 || c.Threads < 1 {
		return fmt.Errorf("cluster: non-positive geometry %+v", c)
	}
	return nil
}

// Run executes the study described by cfg over the model and returns the
// collected dataset. Process iterations are filled concurrently (one task
// per trial x rank); the result is deterministic in cfg.Seed regardless of
// scheduling because every (trial, rank, iteration) derives its own
// random stream.
func Run(model workload.Model, cfg Config) (*trace.Dataset, error) {
	return RunWorkers(model, cfg, 0)
}

// RunWorkers is Run with an explicit bound on the number of fill
// goroutines; workers <= 0 means one per CPU. The campaign engine uses
// this to divide the machine between concurrently executing studies
// instead of oversubscribing it.
func RunWorkers(model workload.Model, cfg Config, workers int) (*trace.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := trace.NewDataset(model.Name(), cfg.Trials, cfg.Ranks, cfg.Iterations, cfg.Threads)
	root := rng.New(cfg.Seed)

	type job struct{ trial, rank int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.Trials*cfg.Ranks {
		workers = cfg.Trials * cfg.Ranks
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				for i := 0; i < cfg.Iterations; i++ {
					model.FillProcessIteration(root, j.trial, j.rank, i, d.Times[j.trial][j.rank][i])
				}
			}
		}()
	}
	for t := 0; t < cfg.Trials; t++ {
		for r := 0; r < cfg.Ranks; r++ {
			jobs <- job{t, r}
		}
	}
	close(jobs)
	wg.Wait()
	return d, nil
}

// MustRun is Run for known-good configurations; it panics on error.
func MustRun(model workload.Model, cfg Config) *trace.Dataset {
	d, err := Run(model, cfg)
	if err != nil {
		panic(err)
	}
	return d
}
