package cluster

import (
	"sync"
	"testing"
	"time"

	"earlybird/internal/noise"
	"earlybird/internal/workload"
)

// blockRecorder copies every observed block into a shared slice indexed
// by the block's stripe position. Each index is written by exactly one
// worker (stripe pinning assigns every (trial, rank) to one worker), so
// the only sharing is the slice header — which the race detector watches
// for us.
type blockRecorder struct {
	cfg    Config
	blocks [][]float64
}

func (r *blockRecorder) ObserveBlock(trial, rank, iter int, times []float64) {
	s := ((trial*r.cfg.Ranks)+rank)*r.cfg.Iterations + iter
	r.blocks[s] = append([]float64(nil), times...)
}

// TestStreamPooledScratchNoAliasing proves that the pooled per-worker
// scratch streams (workload's streamPool, borrowed for every noise fill
// and every rng.ChildInto re-seed) never alias between workers: a noisy
// model is filled with 8 concurrent workers and with 1, and every
// (trial, rank, iter) block must match bit-for-bit. If two workers ever
// shared a pooled stream, the interleaved re-seeds would corrupt the
// draws and some block would differ; run under -race (`make race`) the
// shared *rng.Source state itself becomes a detector target.
func TestStreamPooledScratchNoAliasing(t *testing.T) {
	cfg := Config{Trials: 4, Ranks: 4, Iterations: 30, Threads: 16, Seed: 77}
	model := &workload.Noisy{
		Base:  workload.DefaultMiniMD(),
		Noise: noise.RandomInterrupt{Rate: 200, MeanCost: 20 * time.Microsecond},
	}

	run := func(workers int) [][]float64 {
		t.Helper()
		rec := blockRecorder{cfg: cfg, blocks: make([][]float64, cfg.Trials*cfg.Ranks*cfg.Iterations)}
		var mu sync.Mutex
		handed := 0
		_, err := RunStream(model, cfg, workers, nil, func() BlockObserver {
			mu.Lock()
			handed++
			mu.Unlock()
			return &rec
		})
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 && handed < 2 {
			t.Fatalf("want >= 2 worker observers, got %d", handed)
		}
		return rec.blocks
	}

	serial := run(1)
	concurrent := run(8)
	for s := range serial {
		if len(serial[s]) != cfg.Threads || len(concurrent[s]) != cfg.Threads {
			t.Fatalf("block %d: missing or short (serial %d, concurrent %d)",
				s, len(serial[s]), len(concurrent[s]))
		}
		for i := range serial[s] {
			if serial[s][i] != concurrent[s][i] {
				t.Fatalf("block %d sample %d differs: serial %v concurrent %v — pooled streams aliased",
					s, i, serial[s][i], concurrent[s][i])
			}
		}
	}
}
