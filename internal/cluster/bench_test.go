package cluster

import (
	"testing"

	"earlybird/internal/dlb"
	"earlybird/internal/workload"
)

// BenchmarkRunQuickGeometry measures generating one reduced study
// (3 x 4 x 60 x 48 = 34560 samples).
func BenchmarkRunQuickGeometry(b *testing.B) {
	cfg := Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC(),
	} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFillDLB measures full-study fill throughput at the paper's
// geometry (10 x 8 x 200 x 48 = 768000 samples) under the static layout
// and under LeWI rebalancing — the comparison make bench-json publishes
// as BENCH_dlb.json. The delta is the cost of the trial-major fill plus
// the per-iteration balancer decisions.
func BenchmarkFillDLB(b *testing.B) {
	cfg := DefaultConfig()
	model := workload.DefaultMiniFE()
	for _, policy := range []dlb.Spec{{}, {Policy: dlb.PolicyLeWI}} {
		b.Run(policy.Name(), func(b *testing.B) {
			b.SetBytes(int64(cfg.Samples()) * 8)
			for i := 0; i < b.N; i++ {
				if _, err := RunColumnarDLB(model, cfg, policy, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
