package cluster

import (
	"testing"

	"earlybird/internal/workload"
)

// BenchmarkRunQuickGeometry measures generating one reduced study
// (3 x 4 x 60 x 48 = 34560 samples).
func BenchmarkRunQuickGeometry(b *testing.B) {
	cfg := Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC(),
	} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
