package cluster

import (
	"testing"

	"earlybird/internal/workload"
)

func TestRunGeometry(t *testing.T) {
	cfg := Config{Trials: 2, Ranks: 3, Iterations: 5, Threads: 7, Seed: 9}
	d, err := Run(workload.DefaultMiniFE(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.App != "minife" {
		t.Errorf("app = %q", d.App)
	}
	if d.NumSamples() != 2*3*5*7 {
		t.Errorf("samples = %d", d.NumSamples())
	}
	for _, x := range d.AllSamples() {
		if x <= 0 {
			t.Fatalf("non-positive compute time %v", x)
		}
	}
}

func TestRunDeterministicAcrossSchedules(t *testing.T) {
	cfg := Config{Trials: 3, Ranks: 2, Iterations: 10, Threads: 16, Seed: 42}
	a := MustRun(workload.DefaultMiniMD(), cfg)
	b := MustRun(workload.DefaultMiniMD(), cfg)
	as, bs := a.AllSamples(), b.AllSamples()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, as[i], bs[i])
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := Config{Trials: 1, Ranks: 1, Iterations: 2, Threads: 8, Seed: 1}
	cfg2 := cfg
	cfg2.Seed = 2
	a := MustRun(workload.DefaultMiniQMC(), cfg)
	b := MustRun(workload.DefaultMiniQMC(), cfg2)
	if a.AllSamples()[0] == b.AllSamples()[0] {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(workload.DefaultMiniFE(), Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trials != 10 || cfg.Ranks != 8 || cfg.Iterations != 200 || cfg.Threads != 48 {
		t.Fatalf("default config %+v does not match Section 3.2", cfg)
	}
	if cfg.Trials*cfg.Ranks*cfg.Iterations*cfg.Threads != 768000 {
		t.Fatal("default config should yield 768000 samples")
	}
	if cfg.Trials*cfg.Ranks*cfg.Iterations != 16000 {
		t.Fatal("default config should yield 16000 process iterations")
	}
}

func TestMustRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustRun(workload.DefaultMiniFE(), Config{Trials: -1})
}
