package cluster

import (
	"math"
	"testing"

	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

func TestRunGeometry(t *testing.T) {
	cfg := Config{Trials: 2, Ranks: 3, Iterations: 5, Threads: 7, Seed: 9}
	d, err := Run(workload.DefaultMiniFE(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.App != "minife" {
		t.Errorf("app = %q", d.App)
	}
	if d.NumSamples() != 2*3*5*7 {
		t.Errorf("samples = %d", d.NumSamples())
	}
	for _, x := range d.AllSamples() {
		if x <= 0 {
			t.Fatalf("non-positive compute time %v", x)
		}
	}
}

func TestRunDeterministicAcrossSchedules(t *testing.T) {
	cfg := Config{Trials: 3, Ranks: 2, Iterations: 10, Threads: 16, Seed: 42}
	a := MustRun(workload.DefaultMiniMD(), cfg)
	b := MustRun(workload.DefaultMiniMD(), cfg)
	as, bs := a.AllSamples(), b.AllSamples()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, as[i], bs[i])
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := Config{Trials: 1, Ranks: 1, Iterations: 2, Threads: 8, Seed: 1}
	cfg2 := cfg
	cfg2.Seed = 2
	a := MustRun(workload.DefaultMiniQMC(), cfg)
	b := MustRun(workload.DefaultMiniQMC(), cfg2)
	if a.AllSamples()[0] == b.AllSamples()[0] {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(workload.DefaultMiniFE(), Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trials != 10 || cfg.Ranks != 8 || cfg.Iterations != 200 || cfg.Threads != 48 {
		t.Fatalf("default config %+v does not match Section 3.2", cfg)
	}
	if cfg.Trials*cfg.Ranks*cfg.Iterations*cfg.Threads != 768000 {
		t.Fatal("default config should yield 768000 samples")
	}
	if cfg.Trials*cfg.Ranks*cfg.Iterations != 16000 {
		t.Fatal("default config should yield 16000 process iterations")
	}
}

func TestMustRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustRun(workload.DefaultMiniFE(), Config{Trials: -1})
}

// countingObserver accumulates a per-worker sample count and sum; merged
// across workers it must match the materialised dataset exactly.
type countingObserver struct {
	blocks int
	n      int
	sum    float64
}

func (o *countingObserver) ObserveBlock(trial, rank, iter int, xs []float64) {
	o.blocks++
	o.n += len(xs)
	for _, x := range xs {
		o.sum += x
	}
}

// TestRunStreamObserversSeeEveryBlock runs the streaming fill with no sink
// (aggregate-only mode) across several workers and checks the merged
// observer totals against the materialised run — also the -race exercise
// for the concurrent fill path.
func TestRunStreamObserversSeeEveryBlock(t *testing.T) {
	model := &workload.MiniFE{}
	cfg := Config{Trials: 2, Ranks: 3, Iterations: 20, Threads: 16, Seed: 7}

	obs, err := RunStream(model, cfg, 4, nil, func() BlockObserver { return &countingObserver{} })
	if err != nil {
		t.Fatal(err)
	}
	var total countingObserver
	for _, o := range obs {
		c := o.(*countingObserver)
		total.blocks += c.blocks
		total.n += c.n
		total.sum += c.sum
	}
	if want := cfg.Trials * cfg.Ranks * cfg.Iterations; total.blocks != want {
		t.Fatalf("observers saw %d blocks, want %d", total.blocks, want)
	}
	if want := cfg.Trials * cfg.Ranks * cfg.Iterations * cfg.Threads; total.n != want {
		t.Fatalf("observers saw %d samples, want %d", total.n, want)
	}

	d, err := RunWorkers(model, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0.0
	for _, x := range d.AllSamples() {
		exact += x
	}
	if diff := math.Abs(total.sum - exact); diff > 1e-9*math.Abs(exact) {
		t.Fatalf("streamed sum %v vs materialised sum %v", total.sum, exact)
	}
}

// TestRunColumnarMatchesRunWorkers: the sealed columnar store and the
// nested dataset view must be the same bytes and the same fingerprint,
// regardless of worker count.
func TestRunColumnarMatchesRunWorkers(t *testing.T) {
	model := &workload.MiniMD{}
	cfg := Config{Trials: 2, Ranks: 2, Iterations: 15, Threads: 8, Seed: 3}
	col, err := RunColumnar(model, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunWorkers(model, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if col.Fingerprint() != d.Fingerprint() {
		t.Fatal("columnar and dataset fingerprints differ")
	}
	if col.NumSamples() != d.NumSamples() {
		t.Fatal("sample counts differ")
	}
}

// TestRunStreamWithSinkFeedsObserversAndSink: sink mode must both
// materialise the samples and feed them to observers.
func TestRunStreamWithSinkFeedsObserversAndSink(t *testing.T) {
	model := &workload.MiniQMC{}
	cfg := Config{Trials: 1, Ranks: 2, Iterations: 10, Threads: 8, Seed: 1}
	sink := trace.NewSink(model.Name(), cfg.Trials, cfg.Ranks, cfg.Iterations, cfg.Threads)
	obs, err := RunStream(model, cfg, 2, sink, func() BlockObserver { return &countingObserver{} })
	if err != nil {
		t.Fatal(err)
	}
	col, err := sink.Seal()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, o := range obs {
		n += o.(*countingObserver).n
	}
	if n != col.NumSamples() {
		t.Fatalf("observers saw %d samples, sink holds %d", n, col.NumSamples())
	}
}

// TestRunStreamRejectsMismatchedSink guards the sink/config geometry check.
func TestRunStreamRejectsMismatchedSink(t *testing.T) {
	model := &workload.MiniFE{}
	cfg := Config{Trials: 2, Ranks: 2, Iterations: 4, Threads: 4, Seed: 1}
	sink := trace.NewSink(model.Name(), 1, 2, 4, 4)
	if _, err := RunStream(model, cfg, 1, sink, nil); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
}
