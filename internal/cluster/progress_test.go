package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"earlybird/internal/dlb"
	"earlybird/internal/workload"
)

// countingSink is a minimal ProgressSink: atomics only, exactly like
// telemetry.Tracker's feed side, so attaching it from concurrent fill
// workers is race-clean by construction.
type countingSink struct {
	blocks  atomic.Int64
	samples atomic.Int64
	busyNs  atomic.Int64
	lends   atomic.Int64
}

func (s *countingSink) ObserveFill(n int, busy time.Duration) {
	s.blocks.Add(1)
	s.samples.Add(int64(n))
	s.busyNs.Add(int64(busy))
}

func (s *countingSink) ObserveLend(n int) { s.lends.Add(int64(n)) }

// TestProgressSinkDoesNotPerturbFill pins the telemetry no-perturbation
// contract: a fill with a progress sink attached produces bit-identical
// datasets to a detached fill, for the static and both rebalancing
// policies, at the quick geometry always and at the paper geometry
// outside -short. The static paper/quick fingerprints must additionally
// equal the pre-refactor goldens, so telemetry cannot even perturb the
// bits "consistently". Run under -race (`make race`) the sink's shared
// atomics become detector targets for every fill worker.
func TestProgressSinkDoesNotPerturbFill(t *testing.T) {
	geoms := map[string]Config{"quick": SmallConfig()}
	if !testing.Short() {
		geoms["paper"] = DefaultConfig()
	}
	policies := []dlb.Spec{{}, {Policy: dlb.PolicyLeWI}, {Policy: dlb.PolicyDROM}}

	for app, golden := range preRefactorFingerprints {
		model, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range geoms {
			for _, policy := range policies {
				detached, err := RunColumnarDLB(model, cfg, policy, 4)
				if err != nil {
					t.Fatal(err)
				}
				sink := &countingSink{}
				attached, err := RunColumnarObserved(model, cfg, policy, 4, sink)
				if err != nil {
					t.Fatal(err)
				}
				if attached.Fingerprint() != detached.Fingerprint() {
					t.Errorf("%s %s policy %q: attached fingerprint %#016x != detached %#016x — telemetry perturbed the fill",
						app, name, policy.String(), attached.Fingerprint(), detached.Fingerprint())
				}
				if policy.IsStatic() {
					if got := attached.Fingerprint(); got != golden[name] {
						t.Errorf("%s %s: observed static fingerprint %#016x, want pre-refactor golden %#016x",
							app, name, got, golden[name])
					}
				}

				wantBlocks := int64(cfg.Trials) * int64(cfg.Ranks) * int64(cfg.Iterations)
				if got := sink.blocks.Load(); got != wantBlocks {
					t.Errorf("%s %s policy %q: sink saw %d blocks, want %d",
						app, name, policy.String(), got, wantBlocks)
				}
				if got := sink.samples.Load(); got != int64(cfg.Samples()) {
					t.Errorf("%s %s policy %q: sink saw %d samples, want %d",
						app, name, policy.String(), got, cfg.Samples())
				}
				if sink.busyNs.Load() <= 0 {
					t.Errorf("%s %s policy %q: sink accumulated no busy time", app, name, policy.String())
				}
				if policy.IsStatic() && sink.lends.Load() != 0 {
					t.Errorf("%s %s: static fill reported %d lend events", app, name, sink.lends.Load())
				}
			}
		}
	}
}

// TestProgressSinkSeesLendEvents: the balanced fill must report lent
// allocations to the sink — LeWI at the quick geometry demonstrably
// rebalances (TestDLBPolicyChangesBits), so a sink attached to it must
// observe at least one lend event.
func TestProgressSinkSeesLendEvents(t *testing.T) {
	sink := &countingSink{}
	if _, err := RunColumnarObserved(workload.DefaultMiniFE(), SmallConfig(), dlb.Spec{Policy: dlb.PolicyLeWI}, 2, sink); err != nil {
		t.Fatal(err)
	}
	if sink.lends.Load() == 0 {
		t.Fatal("LeWI fill reported no lend events to the progress sink")
	}
}
