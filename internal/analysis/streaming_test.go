package analysis

import (
	"math"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/workload"
)

// TestComputeMetricsStreamingRangeMatchesInRange: a range-restricted
// cursor must reproduce ComputeMetricsInRange — the phase-wise analysis
// path (MiniMD) — exactly for the non-sketch fields.
func TestComputeMetricsStreamingRangeMatchesInRange(t *testing.T) {
	model := &workload.MiniMD{}
	cfg := cluster.Config{Trials: 2, Ranks: 2, Iterations: 40, Threads: 24, Seed: 2}
	d, err := cluster.Run(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const from, to = 5, 25
	exact := ComputeMetricsInRange(d, DefaultLaggardThresholdSec, from, to)
	got := ComputeMetricsStreaming(d.App, d.CursorRange(from, to), DefaultLaggardThresholdSec)

	rel := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	if rel(got.MeanMedianSec, exact.MeanMedianSec) > 1e-9 ||
		got.LaggardFraction != exact.LaggardFraction ||
		rel(got.AvgReclaimableProcSec, exact.AvgReclaimableProcSec) > 1e-9 ||
		rel(got.AvgReclaimableAppIterSec, exact.AvgReclaimableAppIterSec) > 1e-9 {
		t.Fatalf("streaming range metrics %+v vs exact %+v", got, exact)
	}
	if rel(got.IQRMeanSec, exact.IQRMeanSec) > 0.10 {
		t.Fatalf("IQRMeanSec %v vs %v", got.IQRMeanSec, exact.IQRMeanSec)
	}
}

// TestMetricsAccumulatorMergeOrderIndependent: merging shards in
// different orders must give the same result up to float rounding.
func TestMetricsAccumulatorMergeOrderIndependent(t *testing.T) {
	model := &workload.MiniFE{}
	cfg := cluster.Config{Trials: 2, Ranks: 2, Iterations: 12, Threads: 16, Seed: 9}
	d, err := cluster.Run(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	build := func(order []int) AppMetrics {
		// One accumulator per trial, merged in the given order.
		accs := make([]*MetricsAccumulator, cfg.Trials)
		for i := range accs {
			accs[i] = NewMetricsAccumulator(d.App, DefaultLaggardThresholdSec)
		}
		d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
			accs[trial].ObserveBlock(trial, rank, iter, xs)
		})
		root := NewMetricsAccumulator(d.App, DefaultLaggardThresholdSec)
		for _, i := range order {
			root.Merge(accs[i])
		}
		return root.Finalize()
	}
	a := build([]int{0, 1})
	b := build([]int{1, 0})
	if a.LaggardFraction != b.LaggardFraction ||
		math.Abs(a.MeanMedianSec-b.MeanMedianSec) > 1e-12 {
		t.Fatalf("merge order changed results: %+v vs %+v", a, b)
	}
}

// TestTable1StreamingMatchesTable1Row: pass rates must be identical — the
// battery runs on the same blocks either way.
func TestTable1StreamingMatchesTable1Row(t *testing.T) {
	model := &workload.MiniQMC{}
	cfg := cluster.Config{Trials: 2, Ranks: 2, Iterations: 15, Threads: 24, Seed: 4}
	d, err := cluster.Run(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := Table1Row(d, 0.05)
	got := Table1Streaming(d.App, d.Cursor(), 0.05)
	if got != exact {
		t.Fatalf("streaming Table1 %+v vs exact %+v", got, exact)
	}
}
