// Binary codecs for the streaming accumulators: the shard-level state
// the federation layer ships from workers to the coordinator
// (/v1/shard). Encodings are versioned and value-preserving (see
// internal/wire) — floats travel as their exact bit patterns, trials
// and iterations in sorted order — so marshalling is deterministic and
// an unmarshalled accumulator merges bit-identically to the original.

package analysis

import (
	"fmt"
	"sort"

	"earlybird/internal/stats"
	"earlybird/internal/wire"
)

// Codec version bytes, bumped on any layout change.
const (
	metricsCodecVersion uint8 = 1
	table1CodecVersion  uint8 = 1
)

// MarshalBinary encodes the accumulator's full state: identity (app,
// threshold), every per-trial partial and every per-iteration sketch,
// all in sorted order so equal accumulators marshal to equal bytes.
func (a *MetricsAccumulator) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U8(metricsCodecVersion)
	w.Str(a.app)
	w.F64(a.threshold)

	w.U32(uint32(len(a.trials)))
	for _, t := range a.sortedTrials() {
		ta := a.trials[t]
		w.I64(int64(t))
		w.I64(ta.nProc)
		w.F64(ta.medianSum)
		w.F64(ta.reclSum)
		w.F64(ta.ratioSum)
		w.I64(ta.laggards)
		iters := make([]int, 0, len(ta.iters))
		for iter := range ta.iters {
			iters = append(iters, iter)
		}
		sort.Ints(iters)
		w.U32(uint32(len(iters)))
		for _, iter := range iters {
			ip := ta.iters[iter]
			w.I64(int64(iter))
			w.I64(ip.n)
			w.F64(ip.sum)
			w.F64(ip.max)
		}
	}

	sketchIters := make([]int, 0, len(a.sketches))
	for iter := range a.sketches {
		sketchIters = append(sketchIters, iter)
	}
	sort.Ints(sketchIters)
	w.U32(uint32(len(sketchIters)))
	for _, iter := range sketchIters {
		enc, err := a.sketches[iter].MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.I64(int64(iter))
		w.Bytes(enc)
	}
	return w.Buf, nil
}

// UnmarshalBinary replaces the accumulator's state — identity included —
// with the decoded one. The receiver may come from NewMetricsAccumulator
// with any arguments; they are overwritten.
func (a *MetricsAccumulator) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != metricsCodecVersion {
		return fmt.Errorf("analysis: unknown MetricsAccumulator codec version %d", v)
	}
	dec := MetricsAccumulator{
		app:       r.Str(),
		threshold: r.F64(),
		trials:    map[int]*trialAccum{},
		sketches:  map[int]*stats.QuantileSketch{},
	}
	nTrials := r.U32()
	for i := uint32(0); i < nTrials && r.Err() == nil; i++ {
		trial := int(r.I64())
		ta := &trialAccum{
			nProc:     r.I64(),
			medianSum: r.F64(),
			reclSum:   r.F64(),
			ratioSum:  r.F64(),
			laggards:  r.I64(),
			iters:     map[int]*iterPartial{},
		}
		if r.Err() == nil {
			if ta.nProc < 0 || ta.laggards < 0 || ta.laggards > ta.nProc {
				return fmt.Errorf("analysis: corrupt trial %d counts (nProc %d, laggards %d)", trial, ta.nProc, ta.laggards)
			}
			if _, dup := dec.trials[trial]; dup {
				return fmt.Errorf("analysis: duplicate trial %d in encoded state", trial)
			}
		}
		nIters := r.U32()
		for j := uint32(0); j < nIters && r.Err() == nil; j++ {
			iter := int(r.I64())
			ip := &iterPartial{n: r.I64(), sum: r.F64(), max: r.F64()}
			if r.Err() == nil && ip.n < 0 {
				return fmt.Errorf("analysis: corrupt iteration %d count %d in trial %d", iter, ip.n, trial)
			}
			ta.iters[iter] = ip
		}
		dec.trials[trial] = ta
	}
	nSketches := r.U32()
	for i := uint32(0); i < nSketches && r.Err() == nil; i++ {
		iter := int(r.I64())
		enc := r.Bytes()
		if r.Err() != nil {
			break
		}
		sk := new(stats.QuantileSketch)
		if err := sk.UnmarshalBinary(enc); err != nil {
			return fmt.Errorf("analysis: iteration %d sketch: %w", iter, err)
		}
		dec.sketches[iter] = sk
	}
	if err := r.Finish("MetricsAccumulator"); err != nil {
		return err
	}
	*a = dec
	return nil
}

// App returns the application name the accumulator was created for.
func (a *Table1Accumulator) App() string { return a.app }

// Alpha returns the significance level the battery runs at.
func (a *Table1Accumulator) Alpha() float64 { return a.alpha }

// Blocks returns how many process-iteration blocks have been observed.
func (a *Table1Accumulator) Blocks() int64 { return int64(a.total) }

// MarshalBinary encodes the accumulator's full state. Deterministic:
// equal accumulators marshal to equal bytes.
func (a *Table1Accumulator) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U8(table1CodecVersion)
	w.Str(a.app)
	w.F64(a.alpha)
	w.I64(int64(a.total))
	for _, p := range a.passed {
		w.I64(int64(p))
	}
	return w.Buf, nil
}

// UnmarshalBinary replaces the accumulator's state — identity included —
// with the decoded one.
func (a *Table1Accumulator) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != table1CodecVersion {
		return fmt.Errorf("analysis: unknown Table1Accumulator codec version %d", v)
	}
	dec := Table1Accumulator{
		app:   r.Str(),
		alpha: r.F64(),
		total: int(r.I64()),
	}
	for i := range dec.passed {
		dec.passed[i] = int(r.I64())
	}
	if err := r.Finish("Table1Accumulator"); err != nil {
		return err
	}
	if dec.total < 0 {
		return fmt.Errorf("analysis: corrupt Table1 total %d", dec.total)
	}
	for i, p := range dec.passed {
		if p < 0 || p > dec.total {
			return fmt.Errorf("analysis: corrupt Table1 pass count %d/%d for test %d", p, dec.total, i)
		}
	}
	*a = dec
	return nil
}
