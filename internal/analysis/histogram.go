package analysis

import (
	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// Bin widths used by the paper's figures.
const (
	// Fig3BinWidthSec: application-level histograms, 10 microseconds.
	Fig3BinWidthSec = 10e-6
	// Fig5BinWidthSec: MiniFE per-process histograms, 50 microseconds.
	Fig5BinWidthSec = 50e-6
	// Fig7aBinWidthSec: MiniMD phase-one histogram, 50 microseconds.
	Fig7aBinWidthSec = 50e-6
	// Fig7bcBinWidthSec: MiniMD phase-two histograms, 10 microseconds.
	Fig7bcBinWidthSec = 10e-6
	// Fig9BinWidthSec: MiniQMC per-process histogram, 1 millisecond.
	Fig9BinWidthSec = 1e-3
)

// ApplicationHistogram builds the paper's Figure 3 histogram: all thread
// arrival samples of the dataset, with the given bin width in seconds.
func ApplicationHistogram(d *trace.Dataset, binWidthSec float64) *stats.Histogram {
	return stats.NewHistogram(d.AllSamples(), binWidthSec)
}

// ProcessIterationHistogram builds a Figure 5/7/9-style histogram of a
// single (trial, rank, iteration) thread set.
func ProcessIterationHistogram(d *trace.Dataset, trial, rank, iter int, binWidthSec float64) *stats.Histogram {
	return stats.NewHistogram(d.ProcessIteration(trial, rank, iter), binWidthSec)
}
