package analysis

import (
	"math"
	"testing"

	"earlybird/internal/trace"
)

func TestLoadBalanceValues(t *testing.T) {
	if lb := LoadBalance([]float64{2, 2, 2}); lb != 1 {
		t.Errorf("balanced LB = %v", lb)
	}
	// mean 2.5 / max 4 = 0.625.
	if lb := LoadBalance([]float64{1, 2, 3, 4}); math.Abs(lb-0.625) > 1e-12 {
		t.Errorf("LB = %v", lb)
	}
	if lb := LoadBalance([]float64{0, 0}); lb != 0 {
		t.Errorf("degenerate LB = %v", lb)
	}
}

// LB and IdleRatio are complementary: LB = 1 - IdleRatio.
func TestLoadBalanceIdleRatioIdentity(t *testing.T) {
	xs := []float64{1.2, 3.4, 2.2, 5.1, 4.4}
	if diff := LoadBalance(xs) + IdleRatio(xs) - 1; math.Abs(diff) > 1e-12 {
		t.Errorf("LB + IdleRatio - 1 = %v", diff)
	}
}

func TestDatasetLoadBalance(t *testing.T) {
	d := trace.NewDataset("lb", 1, 1, 2, 4)
	copy(d.Times[0][0][0], []float64{2, 2, 2, 2}) // LB 1
	copy(d.Times[0][0][1], []float64{1, 2, 3, 4}) // LB 0.625
	st := DatasetLoadBalance(d)
	if math.Abs(st.Mean-0.8125) > 1e-12 {
		t.Errorf("mean = %v", st.Mean)
	}
	if math.Abs(st.Min-0.625) > 1e-12 {
		t.Errorf("min = %v", st.Min)
	}
	if st.P5 < st.Min || st.P5 > st.Mean+0.5 {
		t.Errorf("p5 = %v", st.P5)
	}
}
