package analysis

import (
	"fmt"
	"strings"

	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// DefaultPercentiles are the series plotted in the paper's Figures 4, 6
// and 8 (legend values correspond to percentiles of the collected thread
// execution times).
var DefaultPercentiles = []float64{1, 5, 25, 50, 75, 95, 99}

// PercentileSeries is a per-application-iteration percentile plot: for
// each iteration, the requested percentiles of that iteration's 3840
// aggregated samples.
type PercentileSeries struct {
	App         string
	Percentiles []float64
	// Values[i][p] is the Percentiles[p]-th percentile of iteration i,
	// in seconds.
	Values [][]float64
}

// IterationPercentiles builds the percentile series of a dataset.
func IterationPercentiles(d *trace.Dataset, percentiles []float64) *PercentileSeries {
	if len(percentiles) == 0 {
		percentiles = DefaultPercentiles
	}
	ps := &PercentileSeries{App: d.App, Percentiles: percentiles}
	ps.Values = make([][]float64, d.Iterations)
	for i := 0; i < d.Iterations; i++ {
		sorted := stats.Sorted(d.IterationSamples(i))
		row := make([]float64, len(percentiles))
		for k, p := range percentiles {
			row[k] = stats.PercentileSorted(sorted, p)
		}
		ps.Values[i] = row
	}
	return ps
}

// pIndex locates a percentile column.
func (ps *PercentileSeries) pIndex(p float64) int {
	for i, q := range ps.Percentiles {
		if q == p {
			return i
		}
	}
	return -1
}

// Column returns the series of one percentile across iterations, or nil
// if that percentile was not computed.
func (ps *PercentileSeries) Column(p float64) []float64 {
	i := ps.pIndex(p)
	if i < 0 {
		return nil
	}
	out := make([]float64, len(ps.Values))
	for k, row := range ps.Values {
		out[k] = row[i]
	}
	return out
}

// IQRStats returns the mean and max of (p75 - p25) across iterations in
// [fromIter, toIter) — the quantities the paper reads off its percentile
// plots. Both 25 and 75 must be in Percentiles.
func (ps *PercentileSeries) IQRStats(fromIter, toIter int) (mean, max float64) {
	i25, i75 := ps.pIndex(25), ps.pIndex(75)
	if i25 < 0 || i75 < 0 {
		return 0, 0
	}
	if fromIter < 0 {
		fromIter = 0
	}
	if toIter > len(ps.Values) {
		toIter = len(ps.Values)
	}
	n := 0
	for i := fromIter; i < toIter; i++ {
		iqr := ps.Values[i][i75] - ps.Values[i][i25]
		mean += iqr
		if iqr > max {
			max = iqr
		}
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	return mean, max
}

// SkewAsymmetry returns the mean of (median - p5) - (p95 - median) across
// iterations: positive values mean the lower tail is longer — the paper's
// observation that MiniFE's early arrivals are more common than late ones.
func (ps *PercentileSeries) SkewAsymmetry() float64 {
	i5, i50, i95 := ps.pIndex(5), ps.pIndex(50), ps.pIndex(95)
	if i5 < 0 || i50 < 0 || i95 < 0 {
		return 0
	}
	sum := 0.0
	for _, row := range ps.Values {
		sum += (row[i50] - row[i5]) - (row[i95] - row[i50])
	}
	return sum / float64(len(ps.Values))
}

// CSV renders the series with one row per iteration, times in the given
// unit (e.g. 1e-3 for milliseconds).
func (ps *PercentileSeries) CSV(unit float64) string {
	var b strings.Builder
	b.WriteString("iteration")
	for _, p := range ps.Percentiles {
		fmt.Fprintf(&b, ",p%g", p)
	}
	b.WriteByte('\n')
	for i, row := range ps.Values {
		fmt.Fprintf(&b, "%d", i)
		for _, v := range row {
			fmt.Fprintf(&b, ",%.6g", v/unit)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
