package analysis

import (
	"math"
	"math/rand"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// relErr is the relative disagreement between two values (0 when equal).
func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// foldByShard routes every block of the cursor to its trial's shard
// accumulator — the same per-trial observation sequence a federated
// worker sees when it generates exactly those trials.
func foldByShard(t *testing.T, cur *trace.Cursor, app string, threshold, alpha float64, shardOf []int, shards int) ([]*MetricsAccumulator, []*Table1Accumulator) {
	t.Helper()
	mAccs := make([]*MetricsAccumulator, shards)
	tAccs := make([]*Table1Accumulator, shards)
	for i := range mAccs {
		mAccs[i] = NewMetricsAccumulator(app, threshold)
		tAccs[i] = NewTable1Accumulator(app, alpha)
	}
	for cur.Next() {
		b := cur.Block()
		s := shardOf[b.Trial]
		mAccs[s].ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
		tAccs[s].ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}
	return mAccs, tAccs
}

// TestPartitionInvariance is the federation soundness property: for
// random geometries and random shard partitions of the trial space,
// merged shard accumulators — round-tripped through their binary wire
// form, merged in random order — must reproduce single-node streaming
// results bit-exactly for every moment-derived metric and the Table 1
// row, and within the documented rank-error bound for the
// sketch-estimated IQR statistics.
func TestPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	models := []workload.Model{workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC()}

	for round := 0; round < 5; round++ {
		model := models[round%len(models)]
		cfg := cluster.Config{
			Trials:     2 + rng.Intn(5),
			Ranks:      1 + rng.Intn(3),
			Iterations: 2 + rng.Intn(10),
			Threads:    8 + rng.Intn(17),
			Seed:       uint64(100 + round),
		}
		col, err := cluster.RunColumnar(model, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		threshold := DefaultLaggardThresholdSec
		const alpha = 0.05

		// Single-node reference: one deterministic cursor pass.
		want := ComputeMetricsStreaming(model.Name(), col.Cursor(), threshold)
		wantT1 := Table1Streaming(model.Name(), col.Cursor(), alpha)

		// Random partition of the trial space: each trial lands on one of
		// up to Trials shards (possibly non-contiguous, possibly empty).
		shards := 1 + rng.Intn(cfg.Trials)
		shardOf := make([]int, cfg.Trials)
		for trial := range shardOf {
			shardOf[trial] = rng.Intn(shards)
		}
		mAccs, tAccs := foldByShard(t, col.Cursor(), model.Name(), threshold, alpha, shardOf, shards)

		// Round-trip every shard through the wire codec, then merge in a
		// random order — exactly what the fleet coordinator does with
		// /v1/shard responses arriving in completion order.
		mRoot := NewMetricsAccumulator(model.Name(), threshold)
		tRoot := NewTable1Accumulator(model.Name(), alpha)
		for _, s := range rng.Perm(shards) {
			enc, err := mAccs[s].MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decM := new(MetricsAccumulator)
			if err := decM.UnmarshalBinary(enc); err != nil {
				t.Fatal(err)
			}
			encT, err := tAccs[s].MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decT := new(Table1Accumulator)
			if err := decT.UnmarshalBinary(encT); err != nil {
				t.Fatal(err)
			}
			mRoot.Merge(decM)
			tRoot.Merge(decT)
		}
		got := mRoot.Finalize()
		gotT1 := tRoot.Finalize()

		// Moment-derived metrics: bit-exact, not merely close.
		if got.MeanMedianSec != want.MeanMedianSec ||
			got.LaggardFraction != want.LaggardFraction ||
			got.AvgReclaimableProcSec != want.AvgReclaimableProcSec ||
			got.IdleRatioProc != want.IdleRatioProc ||
			got.AvgReclaimableAppIterSec != want.AvgReclaimableAppIterSec ||
			got.IdleRatioAppIter != want.IdleRatioAppIter {
			t.Fatalf("round %d (%s %+v, %d shards): merged shards not bit-identical:\n got %+v\nwant %+v",
				round, model.Name(), cfg, shards, got, want)
		}
		// Table 1 is integer counting underneath: exactly equal.
		if gotT1 != wantT1 {
			t.Fatalf("round %d: merged Table1 %+v vs single-node %+v", round, gotT1, wantT1)
		}
		// IQR statistics ride the sketch: merged shard sketches keep the
		// documented rank-error bound, not bit-equality.
		if relErr(got.IQRMeanSec, want.IQRMeanSec) > 0.10 {
			t.Fatalf("round %d: IQRMeanSec merged %v vs single-node %v (>10%%)", round, got.IQRMeanSec, want.IQRMeanSec)
		}
		if relErr(got.IQRMaxSec, want.IQRMaxSec) > 0.15 {
			t.Fatalf("round %d: IQRMaxSec merged %v vs single-node %v (>15%%)", round, got.IQRMaxSec, want.IQRMaxSec)
		}
	}
}

// TestPartitionInvarianceDLB extends the federation soundness property
// across the rebalancing axis: because LeWI/DROM balancer state is
// strictly per-trial, any trial partition of a rebalanced study must
// merge bit-identically to its single-node run — same property, new
// policy axis. The geometry uses 4 ranks so the policies actually fire
// (each round also proves it by checking the rebalanced bits differ
// from static).
func TestPartitionInvarianceDLB(t *testing.T) {
	model := workload.DefaultMiniFE()
	cfg := cluster.Config{Trials: 5, Ranks: 4, Iterations: 10, Threads: 48, Seed: 1}
	static, err := cluster.RunColumnar(model, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	staticRef := ComputeMetricsStreaming(model.Name(), static.Cursor(), DefaultLaggardThresholdSec)

	rng := rand.New(rand.NewSource(53))
	for _, policy := range []dlb.Spec{
		{Policy: dlb.PolicyLeWI},
		{Policy: dlb.PolicyDROM, ReactionIters: 2},
	} {
		col, err := cluster.RunColumnarDLB(model, cfg, policy, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref := ComputeMetricsStreaming(model.Name(), col.Cursor(), DefaultLaggardThresholdSec)
		if ref == staticRef {
			t.Fatalf("%s: rebalancing did not change the data at %+v; the invariance round is vacuous", policy.Name(), cfg)
		}

		// Random trial partition, wire round trip, random merge order —
		// the fleet coordinator's view of a rebalanced sweep cell.
		shards := 2 + rng.Intn(cfg.Trials-1)
		shardOf := make([]int, cfg.Trials)
		for trial := range shardOf {
			shardOf[trial] = rng.Intn(shards)
		}
		mAccs, _ := foldByShard(t, col.Cursor(), model.Name(), DefaultLaggardThresholdSec, 0.05, shardOf, shards)
		root := NewMetricsAccumulator(model.Name(), DefaultLaggardThresholdSec)
		for _, s := range rng.Perm(shards) {
			enc, err := mAccs[s].MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dec := new(MetricsAccumulator)
			if err := dec.UnmarshalBinary(enc); err != nil {
				t.Fatal(err)
			}
			root.Merge(dec)
		}
		got := root.Finalize()
		if got.MeanMedianSec != ref.MeanMedianSec ||
			got.LaggardFraction != ref.LaggardFraction ||
			got.AvgReclaimableProcSec != ref.AvgReclaimableProcSec ||
			got.IdleRatioProc != ref.IdleRatioProc ||
			got.AvgReclaimableAppIterSec != ref.AvgReclaimableAppIterSec ||
			got.IdleRatioAppIter != ref.IdleRatioAppIter {
			t.Fatalf("%s (%d shards): merged shards not bit-identical under rebalancing:\n got %+v\nwant %+v",
				policy.Name(), shards, got, ref)
		}
	}
}

// TestPartitionInvarianceContiguous pins the fleet's actual sharding
// shape — contiguous trial ranges — including the degenerate one-shard
// split, and checks a second property: re-partitioning the same study
// differently gives bit-identical finalized metrics for the exact
// fields (partition invariance between two federated runs, not just
// federated-vs-single-node).
func TestPartitionInvarianceContiguous(t *testing.T) {
	model := workload.DefaultMiniFE()
	cfg := cluster.Config{Trials: 6, Ranks: 2, Iterations: 8, Threads: 16, Seed: 77}
	col, err := cluster.RunColumnar(model, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	splitAt := func(cuts []int) AppMetrics {
		// cuts are shard boundaries: shard i covers [cuts[i], cuts[i+1]).
		shardOf := make([]int, cfg.Trials)
		for i := 0; i+1 < len(cuts); i++ {
			for trial := cuts[i]; trial < cuts[i+1]; trial++ {
				shardOf[trial] = i
			}
		}
		mAccs, _ := foldByShard(t, col.Cursor(), model.Name(), DefaultLaggardThresholdSec, 0.05, shardOf, len(cuts)-1)
		root := NewMetricsAccumulator(model.Name(), DefaultLaggardThresholdSec)
		for _, acc := range mAccs {
			root.Merge(acc)
		}
		return root.Finalize()
	}

	single := splitAt([]int{0, 6})
	balanced := splitAt([]int{0, 2, 4, 6})
	skewed := splitAt([]int{0, 1, 2, 6})
	ref := ComputeMetricsStreaming(model.Name(), col.Cursor(), DefaultLaggardThresholdSec)

	for name, got := range map[string]AppMetrics{"single": single, "balanced": balanced, "skewed": skewed} {
		if got.MeanMedianSec != ref.MeanMedianSec ||
			got.LaggardFraction != ref.LaggardFraction ||
			got.AvgReclaimableProcSec != ref.AvgReclaimableProcSec ||
			got.AvgReclaimableAppIterSec != ref.AvgReclaimableAppIterSec ||
			got.IdleRatioProc != ref.IdleRatioProc ||
			got.IdleRatioAppIter != ref.IdleRatioAppIter {
			t.Fatalf("%s split diverged from reference:\n got %+v\nwant %+v", name, got, ref)
		}
	}
}

// TestMetricsAccumulatorBinaryRoundTrip: the codec must preserve
// identity and every finalized output bit-exactly, and marshalling must
// be deterministic.
func TestMetricsAccumulatorBinaryRoundTrip(t *testing.T) {
	model := workload.DefaultMiniQMC()
	cfg := cluster.Config{Trials: 2, Ranks: 2, Iterations: 6, Threads: 12, Seed: 5}
	col, err := cluster.RunColumnar(model, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewMetricsAccumulator(model.Name(), DefaultLaggardThresholdSec)
	t1 := NewTable1Accumulator(model.Name(), 0.05)
	cur := col.Cursor()
	for cur.Next() {
		b := cur.Block()
		acc.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
		t1.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}

	enc, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Error("MetricsAccumulator.MarshalBinary is not deterministic")
	}
	dec := new(MetricsAccumulator)
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if dec.App() != model.Name() || dec.LaggardThreshold() != DefaultLaggardThresholdSec {
		t.Fatalf("identity lost: app %q threshold %v", dec.App(), dec.LaggardThreshold())
	}
	if dec.Blocks() != acc.Blocks() {
		t.Fatalf("blocks %d vs %d", dec.Blocks(), acc.Blocks())
	}
	if got, want := dec.Finalize(), acc.Finalize(); got != want {
		t.Fatalf("finalize after round trip:\n got %+v\nwant %+v", got, want)
	}

	encT, err := t1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decT := new(Table1Accumulator)
	if err := decT.UnmarshalBinary(encT); err != nil {
		t.Fatal(err)
	}
	if decT.App() != t1.App() || decT.Alpha() != t1.Alpha() || decT.Blocks() != t1.Blocks() {
		t.Fatalf("table1 identity lost: %q %v %d", decT.App(), decT.Alpha(), decT.Blocks())
	}
	if got, want := decT.Finalize(), t1.Finalize(); got != want {
		t.Fatalf("table1 finalize after round trip: %+v vs %+v", got, want)
	}

	// Corruption is rejected.
	if err := new(MetricsAccumulator).UnmarshalBinary(enc[:len(enc)-2]); err == nil {
		t.Error("truncated MetricsAccumulator: expected error")
	}
	if err := new(Table1Accumulator).UnmarshalBinary([]byte{99}); err == nil {
		t.Error("bad Table1 version: expected error")
	}
}
