package analysis

import (
	"strings"
	"testing"

	"earlybird/internal/trace"
)

func timelineDataset() *trace.Dataset {
	// 2 trials x 2 ranks x 5 iterations x 4 threads; laggards planted in
	// iterations 1 (one process) and 3 (all four processes).
	d := trace.NewDataset("tl", 2, 2, 5, 4)
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		for i := range xs {
			xs[i] = 0.020
		}
		if iter == 3 || (iter == 1 && trial == 0 && rank == 1) {
			xs[0] = 0.025
		}
	})
	return d
}

func TestLaggardTimelineCounts(t *testing.T) {
	tl := NewLaggardTimeline(timelineDataset(), 1e-3)
	want := []int{0, 1, 0, 4, 0}
	if len(tl.Counts) != len(want) {
		t.Fatalf("counts = %v", tl.Counts)
	}
	for i, w := range want {
		if tl.Counts[i] != w {
			t.Fatalf("iteration %d: count %d, want %d", i, tl.Counts[i], w)
		}
	}
	if tl.PerIteration != 4 {
		t.Errorf("per-iteration = %d", tl.PerIteration)
	}
	if tl.ActiveIterations() != 2 {
		t.Errorf("active = %d", tl.ActiveIterations())
	}
	if tl.MaxCount() != 4 {
		t.Errorf("max = %d", tl.MaxCount())
	}
}

func TestLaggardTimelineBurstiness(t *testing.T) {
	tl := NewLaggardTimeline(timelineDataset(), 1e-3)
	// Counts {0,1,0,4,0}: mean 1, variance (1+0+1+9+1... ) / 4 = 3 -> 3.
	if b := tl.Burstiness(); b < 2.9 || b > 3.1 {
		t.Errorf("burstiness = %v, want ~3 (clustered)", b)
	}
	// No laggards at a huge threshold: burstiness 0.
	quiet := NewLaggardTimeline(timelineDataset(), 1)
	if quiet.Burstiness() != 0 {
		t.Errorf("quiet burstiness = %v", quiet.Burstiness())
	}
}

func TestLaggardTimelineCSV(t *testing.T) {
	tl := NewLaggardTimeline(timelineDataset(), 1e-3)
	csv := tl.CSV()
	if !strings.HasPrefix(csv, "iteration,laggard_count\n") {
		t.Fatalf("csv header: %q", csv[:30])
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 6 {
		t.Fatal("csv rows")
	}
}
