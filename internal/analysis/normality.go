// Package analysis implements the paper's Section 4 evaluation pipeline
// over a collected trace.Dataset: normality sweeps at the three
// aggregation levels (application, application iteration, process
// iteration), laggard detection with the median + 1 ms rule, reclaimable
// time and idle-ratio metrics, per-iteration percentile series (Figures 4,
// 6 and 8), and histogram construction (Figures 3, 5, 7 and 9).
package analysis

import (
	"encoding/json"
	"fmt"
	"strings"

	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
)

// NormalitySummary aggregates pass/fail counts of the three tests over a
// family of sample sets at one aggregation level.
type NormalitySummary struct {
	Level string
	// Total is the number of sample sets tested.
	Total int
	// Passed[t] counts sets where test t failed to reject normality.
	Passed [3]int
	// PassedSets[t] lists the indices of passing sets (iteration indices
	// at the application-iteration level), used to reproduce the paper's
	// observation that eight MiniQMC iterations pass D'Agostino only.
	PassedSets [3][]int
}

// PassRate returns Passed[t]/Total.
func (s *NormalitySummary) PassRate(t normality.Test) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Passed[t]) / float64(s.Total)
}

// String renders the summary in Table 1's orientation.
func (s *NormalitySummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d sets):", s.Level, s.Total)
	for _, t := range normality.Tests {
		fmt.Fprintf(&b, " %s %.1f%%", t, 100*s.PassRate(t))
	}
	return b.String()
}

// ApplicationLevelNormality runs the three tests on the full application
// aggregation (768000 samples at the paper's geometry). The paper's
// Section 4.1 finds all three tests reject for all three applications.
func ApplicationLevelNormality(d *trace.Dataset, alpha float64) [3]normality.Result {
	return normality.Battery(d.AllSamples(), alpha)
}

// ApplicationIterationNormality tests each application iteration's
// aggregated samples (3840 at the paper's geometry). The paper finds no
// passing iterations for MiniFE/MiniMD and eight MiniQMC iterations that
// pass D'Agostino while failing the other two tests.
func ApplicationIterationNormality(d *trace.Dataset, alpha float64) *NormalitySummary {
	s := &NormalitySummary{Level: "application iteration", Total: d.Iterations}
	for i := 0; i < d.Iterations; i++ {
		res := normality.Battery(d.IterationSamples(i), alpha)
		for _, t := range normality.Tests {
			if res[t].Passed() {
				s.Passed[t]++
				s.PassedSets[t] = append(s.PassedSets[t], i)
			}
		}
	}
	return s
}

// ProcessIterationNormality tests every (trial, rank, iteration) thread
// set (16000 sets of 48 at the paper's geometry) — the population of the
// paper's Table 1.
func ProcessIterationNormality(d *trace.Dataset, alpha float64) *NormalitySummary {
	s := &NormalitySummary{Level: "process iteration", Total: d.NumProcessIterations()}
	idx := 0
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		res := normality.Battery(xs, alpha)
		for _, t := range normality.Tests {
			if res[t].Passed() {
				s.Passed[t]++
				s.PassedSets[t] = append(s.PassedSets[t], idx)
			}
		}
		idx++
	})
	return s
}

// Table1 holds one application's row of the paper's Table 1: the
// percentage of process iterations that passed each normality test.
type Table1 struct {
	App       string
	PassRates [3]float64 // indexed by normality.Test, as fractions
}

// Table1Row computes the Table 1 row for a dataset.
func Table1Row(d *trace.Dataset, alpha float64) Table1 {
	s := ProcessIterationNormality(d, alpha)
	var t1 Table1
	t1.App = d.App
	for _, t := range normality.Tests {
		t1.PassRates[t] = s.PassRate(t)
	}
	return t1
}

// MarshalJSON renders the row with pass rates keyed by test slug rather
// than positionally, so service clients need not know the battery's
// index order: {"app":"minife","pass_rates":{"dagostino":0.031,...}}.
func (t Table1) MarshalJSON() ([]byte, error) {
	rates := make(map[string]float64, len(normality.Tests))
	for _, test := range normality.Tests {
		rates[test.Slug()] = t.PassRates[test]
	}
	return json.Marshal(struct {
		App       string             `json:"app"`
		PassRates map[string]float64 `json:"pass_rates"`
	}{App: t.App, PassRates: rates})
}

// UnmarshalJSON is MarshalJSON's inverse, so service clients can decode
// responses back into Table1. Unknown slugs are ignored.
func (t *Table1) UnmarshalJSON(data []byte) error {
	var wire struct {
		App       string             `json:"app"`
		PassRates map[string]float64 `json:"pass_rates"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	t.App = wire.App
	for _, test := range normality.Tests {
		t.PassRates[test] = wire.PassRates[test.Slug()]
	}
	return nil
}

// String renders the row as in the paper (percentages).
func (t Table1) String() string {
	return fmt.Sprintf("%-10s D'Agostino %5.1f%%  Shapiro-Wilk %5.1f%%  Anderson-Darling %5.1f%%",
		t.App,
		100*t.PassRates[normality.DAgostino],
		100*t.PassRates[normality.ShapiroWilk],
		100*t.PassRates[normality.AndersonDarling])
}
