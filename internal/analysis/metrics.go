package analysis

import (
	"fmt"

	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// ReclaimableTime returns the paper's reclaimable-time quantity for one
// process iteration: the sum over threads of (latest arrival - this
// thread's arrival) — the total thread-time that early-bird communication
// could in principle put to use (Section 4.2).
func ReclaimableTime(xs []float64) float64 {
	max := stats.Max(xs)
	sum := 0.0
	for _, x := range xs {
		sum += max - x
	}
	return sum
}

// IdleRatio returns the cumulative idle time of a sample set divided by
// (latest arrival x thread count) — the paper's "ratio of time spent
// idle".
func IdleRatio(xs []float64) float64 {
	max := stats.Max(xs)
	if max <= 0 {
		return 0
	}
	return ReclaimableTime(xs) / (max * float64(len(xs)))
}

// AppMetrics collects the scalar quantities Section 4.2 reports per
// application. The paper's definitions of the two idle metrics are
// mutually inconsistent under a single aggregation level (see DESIGN.md),
// so both metrics are computed at both levels.
type AppMetrics struct {
	App string `json:"app"`
	// MeanMedianSec is the mean over process iterations of the median
	// thread arrival time (paper: 26.30 / 24.74 / 60.91 ms).
	MeanMedianSec float64 `json:"mean_median_sec"`
	// LaggardFraction is the fraction of process iterations whose latest
	// thread is more than 1 ms past the median (paper: 22.4% MiniFE,
	// 4.8% MiniMD phase two).
	LaggardFraction float64 `json:"laggard_fraction"`
	// AvgReclaimableProcSec is the mean over process iterations of
	// ReclaimableTime (paper: 42.82 / 17.61 / 708.03 ms).
	AvgReclaimableProcSec float64 `json:"avg_reclaimable_proc_sec"`
	// IdleRatioProc is the mean over process iterations of IdleRatio.
	IdleRatioProc float64 `json:"idle_ratio_proc"`
	// AvgReclaimableAppIterSec and IdleRatioAppIter are the same metrics
	// computed over application-iteration aggregations (3840 samples).
	AvgReclaimableAppIterSec float64 `json:"avg_reclaimable_app_iter_sec"`
	IdleRatioAppIter         float64 `json:"idle_ratio_app_iter"`
	// IQRMeanSec and IQRMaxSec summarise the application-iteration IQR
	// across iterations (the quantities read off Figures 4, 6 and 8).
	IQRMeanSec float64 `json:"iqr_mean_sec"`
	IQRMaxSec  float64 `json:"iqr_max_sec"`
}

// IQRToMedian returns the width discriminant of the Section 5
// classification: the mean iteration IQR over the mean median arrival,
// or zero when the median is not positive.
func (m AppMetrics) IQRToMedian() float64 {
	if m.MeanMedianSec <= 0 {
		return 0
	}
	return m.IQRMeanSec / m.MeanMedianSec
}

// ComputeMetrics derives AppMetrics for the whole dataset.
func ComputeMetrics(d *trace.Dataset, laggardThreshold float64) AppMetrics {
	return ComputeMetricsInRange(d, laggardThreshold, 0, d.Iterations)
}

// ComputeMetricsInRange derives AppMetrics restricted to iterations in
// [fromIter, toIter), for phase-wise analysis (MiniMD).
func ComputeMetricsInRange(d *trace.Dataset, laggardThreshold float64, fromIter, toIter int) AppMetrics {
	m := AppMetrics{App: d.App}
	nProc := 0
	medianSum, reclSum, ratioSum := 0.0, 0.0, 0.0
	laggards := 0
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		if iter < fromIter || iter >= toIter {
			return
		}
		nProc++
		med := stats.Median(xs)
		medianSum += med
		reclSum += ReclaimableTime(xs)
		ratioSum += IdleRatio(xs)
		if stats.Max(xs)-med > laggardThreshold {
			laggards++
		}
	})
	if nProc > 0 {
		m.MeanMedianSec = medianSum / float64(nProc)
		m.LaggardFraction = float64(laggards) / float64(nProc)
		m.AvgReclaimableProcSec = reclSum / float64(nProc)
		m.IdleRatioProc = ratioSum / float64(nProc)
	}

	nIter := 0
	reclAppSum, ratioAppSum, iqrSum := 0.0, 0.0, 0.0
	iqrMax := 0.0
	for i := fromIter; i < toIter; i++ {
		xs := d.IterationSamples(i)
		nIter++
		reclAppSum += ReclaimableTime(xs)
		ratioAppSum += IdleRatio(xs)
		iqr := stats.IQR(xs)
		iqrSum += iqr
		if iqr > iqrMax {
			iqrMax = iqr
		}
	}
	if nIter > 0 {
		m.AvgReclaimableAppIterSec = reclAppSum / float64(nIter)
		m.IdleRatioAppIter = ratioAppSum / float64(nIter)
		m.IQRMeanSec = iqrSum / float64(nIter)
		m.IQRMaxSec = iqrMax
	}
	return m
}

// String renders the metrics in milliseconds, as the paper reports them.
func (m AppMetrics) String() string {
	return fmt.Sprintf(
		"%s: mean median %.2f ms, laggard iterations %.1f%%, "+
			"avg reclaimable (process) %.2f ms, idle ratio (process) %.4f, "+
			"avg reclaimable (app-iter) %.2f ms, idle ratio (app-iter) %.4f, "+
			"IQR mean %.2f ms, IQR max %.2f ms",
		m.App, 1e3*m.MeanMedianSec, 100*m.LaggardFraction,
		1e3*m.AvgReclaimableProcSec, m.IdleRatioProc,
		1e3*m.AvgReclaimableAppIterSec, m.IdleRatioAppIter,
		1e3*m.IQRMeanSec, 1e3*m.IQRMaxSec)
}
