package analysis

import (
	"sort"

	"earlybird/internal/sortx"
	"earlybird/internal/stats"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
)

// iterSketchCompression sizes the per-iteration quantile sketches of the
// streaming metrics accumulator. The only approximate quantities in the
// streaming AppMetrics are the application-iteration IQR statistics;
// the accumulator keeps one sketch per iteration (times workers), so the
// compression is deliberately small — rank error at the quartiles stays
// ≲3%, which lands IQRMeanSec within a few percent of the exact value
// for the study's arrival distributions (agreement-tested at 10% in
// internal/core and internal/analysis) at a fraction of the memory.
const iterSketchCompression = 32

// iterPartial is one trial's exact contribution to one application
// iteration: count, sum and max reconstruct the reclaimable-time and
// idle-ratio metrics exactly once folded across trials.
type iterPartial struct {
	n   int64
	sum float64
	max float64
}

// trialAccum is one trial's share of a MetricsAccumulator: the exact
// process-level sums plus the per-iteration exact partials. Keeping
// state at trial granularity is what makes federation sound — a trial's
// partial is a deterministic function of the samples alone, so any
// partition of the trial space across shards reproduces the same set of
// trialAccums, and Finalize's fixed-order fold rebuilds identical
// totals.
type trialAccum struct {
	nProc     int64
	medianSum float64
	reclSum   float64
	ratioSum  float64
	laggards  int64
	iters     map[int]*iterPartial
}

// MetricsAccumulator computes AppMetrics in a single pass over
// process-iteration blocks, holding O(trials x iterations) partial state
// instead of the O(samples) a materialised dataset needs.
// Per-process-iteration quantities (mean median, laggard fraction,
// reclaimable time, idle ratio) are exact: each block is complete when
// observed, so its median is computed directly. Application-iteration
// reclaimable time and idle ratio are exact too — they reduce to
// per-iteration count/sum/max — and only the iteration IQR statistics
// are estimated, by a per-iteration quantile sketch.
//
// Accumulators are mergeable: a parallel fill keeps one per worker (or a
// federated sweep one per trial shard) and combines them with Merge, in
// any order. State is kept per trial and Finalize folds trials in
// ascending order, so when each trial's blocks were observed by exactly
// one accumulator in a deterministic order — as in cursor passes and the
// fleet's trial-sharded execution — every non-sketch output is
// bit-identical regardless of how trials were partitioned or merged. The
// IQR fields ride the quantile sketch, whose merge keeps the documented
// rank-error bound but not bit-equality. An accumulator is not safe for
// concurrent use.
type MetricsAccumulator struct {
	app       string
	threshold float64
	scratch   []float64

	trials   map[int]*trialAccum
	sketches map[int]*stats.QuantileSketch
}

// NewMetricsAccumulator returns an empty accumulator for the given
// application name and laggard threshold (seconds).
func NewMetricsAccumulator(app string, laggardThreshold float64) *MetricsAccumulator {
	return &MetricsAccumulator{
		app:       app,
		threshold: laggardThreshold,
		trials:    map[int]*trialAccum{},
		sketches:  map[int]*stats.QuantileSketch{},
	}
}

// App returns the application name the accumulator was created for.
func (a *MetricsAccumulator) App() string { return a.app }

// LaggardThreshold returns the laggard rule (seconds) the accumulator
// classifies with.
func (a *MetricsAccumulator) LaggardThreshold() float64 { return a.threshold }

// Blocks returns how many process-iteration blocks have been observed.
func (a *MetricsAccumulator) Blocks() int64 {
	var n int64
	for _, ta := range a.trials {
		n += ta.nProc
	}
	return n
}

// ObserveBlock implements cluster.BlockObserver: it folds one complete
// process iteration into the accumulator. xs is not retained.
func (a *MetricsAccumulator) ObserveBlock(trial, rank, iter int, xs []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	// One copy + one sort serves everything below: the sum accumulates
	// in the original block order (bit-identical to the historical
	// scan), the max is the sorted tail, the median reads the sorted
	// scratch, and the sorted scratch then feeds the iteration sketch
	// through its no-buffer AddSorted fast path.
	if cap(a.scratch) < n {
		a.scratch = make([]float64, n)
	}
	a.scratch = a.scratch[:n]
	sum := 0.0
	for i, x := range xs {
		a.scratch[i] = x
		sum += x
	}
	sortx.Sort(a.scratch)
	max := a.scratch[n-1]

	ta := a.trials[trial]
	if ta == nil {
		ta = &trialAccum{iters: map[int]*iterPartial{}}
		a.trials[trial] = ta
	}

	// Process-iteration level: exact, the block is complete.
	med := stats.PercentileSorted(a.scratch, 50)
	recl := float64(n)*max - sum
	ta.nProc++
	ta.medianSum += med
	ta.reclSum += recl
	if max > 0 {
		ta.ratioSum += recl / (max * float64(n))
	}
	if max-med > a.threshold {
		ta.laggards++
	}

	// Application-iteration level: count/sum/max are exact per-trial
	// partials; the sketch covers the IQR.
	ip := ta.iters[iter]
	if ip == nil {
		ip = &iterPartial{max: max}
		ta.iters[iter] = ip
	} else if max > ip.max {
		ip.max = max
	}
	ip.n += int64(n)
	ip.sum += sum

	sk := a.sketches[iter]
	if sk == nil {
		sk = stats.NewQuantileSketch(iterSketchCompression)
		a.sketches[iter] = sk
	}
	sk.AddSorted(a.scratch)
}

// Merge folds another accumulator (for the same application and
// threshold) into this one. o must not be used afterwards. Trials held
// by only one side are adopted bit-exactly; trials present in both (a
// scheduling-dependent worker split) combine additively.
func (a *MetricsAccumulator) Merge(o *MetricsAccumulator) {
	if o == nil {
		return
	}
	for trial, ot := range o.trials {
		ta := a.trials[trial]
		if ta == nil {
			a.trials[trial] = ot
			continue
		}
		ta.nProc += ot.nProc
		ta.medianSum += ot.medianSum
		ta.reclSum += ot.reclSum
		ta.ratioSum += ot.ratioSum
		ta.laggards += ot.laggards
		for iter, op := range ot.iters {
			ip := ta.iters[iter]
			if ip == nil {
				ta.iters[iter] = op
				continue
			}
			if op.max > ip.max {
				ip.max = op.max
			}
			ip.n += op.n
			ip.sum += op.sum
		}
	}
	for iter, os := range o.sketches {
		sk := a.sketches[iter]
		if sk == nil {
			a.sketches[iter] = os
			continue
		}
		sk.Merge(os)
	}
}

// sortedTrials returns the observed trial indices in ascending order —
// the canonical fold order of Finalize.
func (a *MetricsAccumulator) sortedTrials() []int {
	ts := make([]int, 0, len(a.trials))
	for t := range a.trials {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	return ts
}

// Finalize computes the AppMetrics from the accumulated state, folding
// trials in ascending order so the result depends only on what was
// observed, never on how observations were partitioned or merged.
func (a *MetricsAccumulator) Finalize() AppMetrics {
	m := AppMetrics{App: a.app}

	var nProc, laggards int64
	medianSum, reclSum, ratioSum := 0.0, 0.0, 0.0
	type iterTotal struct {
		n   int64
		sum float64
		max float64
	}
	totals := map[int]*iterTotal{}
	for _, t := range a.sortedTrials() {
		ta := a.trials[t]
		nProc += ta.nProc
		medianSum += ta.medianSum
		reclSum += ta.reclSum
		ratioSum += ta.ratioSum
		laggards += ta.laggards
		for iter, ip := range ta.iters {
			it := totals[iter]
			if it == nil {
				totals[iter] = &iterTotal{n: ip.n, sum: ip.sum, max: ip.max}
				continue
			}
			it.n += ip.n
			it.sum += ip.sum
			if ip.max > it.max {
				it.max = ip.max
			}
		}
	}
	if nProc > 0 {
		m.MeanMedianSec = medianSum / float64(nProc)
		m.LaggardFraction = float64(laggards) / float64(nProc)
		m.AvgReclaimableProcSec = reclSum / float64(nProc)
		m.IdleRatioProc = ratioSum / float64(nProc)
	}

	iters := make([]int, 0, len(totals))
	for iter, it := range totals {
		if it.n > 0 {
			iters = append(iters, iter)
		}
	}
	sort.Ints(iters)
	reclAppSum, ratioAppSum, iqrSum := 0.0, 0.0, 0.0
	iqrMax := 0.0
	for _, iter := range iters {
		it := totals[iter]
		recl := float64(it.n)*it.max - it.sum
		reclAppSum += recl
		if it.max > 0 {
			ratioAppSum += recl / (it.max * float64(it.n))
		}
		var iqr float64
		if sk := a.sketches[iter]; sk != nil {
			iqr = sk.Quantile(0.75) - sk.Quantile(0.25)
		}
		iqrSum += iqr
		if iqr > iqrMax {
			iqrMax = iqr
		}
	}
	if len(iters) > 0 {
		m.AvgReclaimableAppIterSec = reclAppSum / float64(len(iters))
		m.IdleRatioAppIter = ratioAppSum / float64(len(iters))
		m.IQRMeanSec = iqrSum / float64(len(iters))
		m.IQRMaxSec = iqrMax
	}
	return m
}

// ComputeMetricsStreaming derives AppMetrics from a process-iteration
// cursor in a single bounded-memory pass — the streaming counterpart of
// ComputeMetrics. All quantities are exact except the iteration IQR
// statistics, which carry the quantile sketch's documented tolerance.
func ComputeMetricsStreaming(app string, cur *trace.Cursor, laggardThreshold float64) AppMetrics {
	acc := NewMetricsAccumulator(app, laggardThreshold)
	for cur.Next() {
		b := cur.Block()
		acc.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}
	return acc.Finalize()
}

// Table1Accumulator computes the paper's Table 1 row — process-iteration
// normality pass rates — in a single pass over blocks. The battery runs
// per complete block, so streaming results are exactly the materialised
// ones. Mergeable like MetricsAccumulator; not safe for concurrent use.
type Table1Accumulator struct {
	app     string
	alpha   float64
	total   int
	passed  [3]int
	scratch []float64 // reused sorted copy for the battery
}

// NewTable1Accumulator returns an empty accumulator at significance
// alpha.
func NewTable1Accumulator(app string, alpha float64) *Table1Accumulator {
	return &Table1Accumulator{app: app, alpha: alpha}
}

// ObserveBlock implements cluster.BlockObserver: it runs the three-test
// battery on one complete process iteration.
func (a *Table1Accumulator) ObserveBlock(trial, rank, iter int, xs []float64) {
	if cap(a.scratch) < len(xs) {
		a.scratch = make([]float64, len(xs))
	}
	res := normality.BatteryScratch(xs, a.scratch, a.alpha)
	a.total++
	for _, t := range normality.Tests {
		if res[t].Passed() {
			a.passed[t]++
		}
	}
}

// Merge folds another accumulator into this one.
func (a *Table1Accumulator) Merge(o *Table1Accumulator) {
	if o == nil {
		return
	}
	a.total += o.total
	for i := range a.passed {
		a.passed[i] += o.passed[i]
	}
}

// Finalize computes the Table 1 row.
func (a *Table1Accumulator) Finalize() Table1 {
	t1 := Table1{App: a.app}
	if a.total == 0 {
		return t1
	}
	for _, t := range normality.Tests {
		t1.PassRates[t] = float64(a.passed[t]) / float64(a.total)
	}
	return t1
}

// Table1Streaming derives the Table 1 row from a process-iteration cursor
// in a single pass — exact, like Table1Row, but without materialising the
// sample slices.
func Table1Streaming(app string, cur *trace.Cursor, alpha float64) Table1 {
	acc := NewTable1Accumulator(app, alpha)
	for cur.Next() {
		b := cur.Block()
		acc.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}
	return acc.Finalize()
}
