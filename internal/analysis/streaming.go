package analysis

import (
	"sort"

	"earlybird/internal/stats"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
)

// iterSketchCompression sizes the per-iteration quantile sketches of the
// streaming metrics accumulator. The only approximate quantities in the
// streaming AppMetrics are the application-iteration IQR statistics;
// the accumulator keeps one sketch per iteration (times workers), so the
// compression is deliberately small — rank error at the quartiles stays
// ≲3%, which lands IQRMeanSec within a few percent of the exact value
// for the study's arrival distributions (agreement-tested at 10% in
// internal/core and internal/analysis) at a fraction of the memory.
const iterSketchCompression = 32

// iterAccum is the per-application-iteration state of a
// MetricsAccumulator: count, sum and max reconstruct the reclaimable-time
// and idle-ratio metrics exactly; the sketch estimates the iteration IQR.
type iterAccum struct {
	n      int64
	sum    float64
	max    float64
	sketch *stats.QuantileSketch
}

// MetricsAccumulator computes AppMetrics in a single pass over
// process-iteration blocks, holding O(iterations) state instead of the
// O(samples) a materialised dataset needs. Per-process-iteration
// quantities (mean median, laggard fraction, reclaimable time, idle
// ratio) are exact: each block is complete when observed, so its median
// is computed directly. Application-iteration reclaimable time and idle
// ratio are exact too — they reduce to per-iteration count/sum/max — and
// only the iteration IQR statistics are estimated, by a per-iteration
// quantile sketch.
//
// Accumulators are mergeable: a parallel fill keeps one per worker and
// combines them with Merge, in any order. An accumulator is not safe for
// concurrent use.
type MetricsAccumulator struct {
	app       string
	threshold float64

	nProc     int
	medianSum float64
	reclSum   float64
	ratioSum  float64
	laggards  int
	scratch   []float64

	iters map[int]*iterAccum
}

// NewMetricsAccumulator returns an empty accumulator for the given
// application name and laggard threshold (seconds).
func NewMetricsAccumulator(app string, laggardThreshold float64) *MetricsAccumulator {
	return &MetricsAccumulator{
		app:       app,
		threshold: laggardThreshold,
		iters:     map[int]*iterAccum{},
	}
}

// ObserveBlock implements cluster.BlockObserver: it folds one complete
// process iteration into the accumulator. xs is not retained.
func (a *MetricsAccumulator) ObserveBlock(trial, rank, iter int, xs []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	sum, max := 0.0, xs[0]
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}

	// Process-iteration level: exact, the block is complete.
	a.scratch = append(a.scratch[:0], xs...)
	sort.Float64s(a.scratch)
	med := stats.PercentileSorted(a.scratch, 50)
	recl := float64(n)*max - sum
	a.nProc++
	a.medianSum += med
	a.reclSum += recl
	if max > 0 {
		a.ratioSum += recl / (max * float64(n))
	}
	if max-med > a.threshold {
		a.laggards++
	}

	// Application-iteration level: count/sum/max are exact; the sketch
	// covers the IQR.
	ia := a.iters[iter]
	if ia == nil {
		ia = &iterAccum{sketch: stats.NewQuantileSketch(iterSketchCompression)}
		a.iters[iter] = ia
	}
	ia.n += int64(n)
	ia.sum += sum
	if ia.n == int64(n) || max > ia.max {
		ia.max = max
	}
	ia.sketch.AddSlice(xs)
}

// Merge folds another accumulator (for the same application and
// threshold) into this one. o must not be used afterwards.
func (a *MetricsAccumulator) Merge(o *MetricsAccumulator) {
	if o == nil {
		return
	}
	a.nProc += o.nProc
	a.medianSum += o.medianSum
	a.reclSum += o.reclSum
	a.ratioSum += o.ratioSum
	a.laggards += o.laggards
	for iter, ob := range o.iters {
		ia := a.iters[iter]
		if ia == nil {
			a.iters[iter] = ob
			continue
		}
		if ob.max > ia.max {
			ia.max = ob.max
		}
		ia.n += ob.n
		ia.sum += ob.sum
		ia.sketch.Merge(ob.sketch)
	}
}

// Finalize computes the AppMetrics from the accumulated state.
func (a *MetricsAccumulator) Finalize() AppMetrics {
	m := AppMetrics{App: a.app}
	if a.nProc > 0 {
		m.MeanMedianSec = a.medianSum / float64(a.nProc)
		m.LaggardFraction = float64(a.laggards) / float64(a.nProc)
		m.AvgReclaimableProcSec = a.reclSum / float64(a.nProc)
		m.IdleRatioProc = a.ratioSum / float64(a.nProc)
	}
	nIter := 0
	reclAppSum, ratioAppSum, iqrSum := 0.0, 0.0, 0.0
	iqrMax := 0.0
	for _, ia := range a.iters {
		if ia.n == 0 {
			continue
		}
		nIter++
		recl := float64(ia.n)*ia.max - ia.sum
		reclAppSum += recl
		if ia.max > 0 {
			ratioAppSum += recl / (ia.max * float64(ia.n))
		}
		iqr := ia.sketch.Quantile(0.75) - ia.sketch.Quantile(0.25)
		iqrSum += iqr
		if iqr > iqrMax {
			iqrMax = iqr
		}
	}
	if nIter > 0 {
		m.AvgReclaimableAppIterSec = reclAppSum / float64(nIter)
		m.IdleRatioAppIter = ratioAppSum / float64(nIter)
		m.IQRMeanSec = iqrSum / float64(nIter)
		m.IQRMaxSec = iqrMax
	}
	return m
}

// ComputeMetricsStreaming derives AppMetrics from a process-iteration
// cursor in a single bounded-memory pass — the streaming counterpart of
// ComputeMetrics. All quantities are exact except the iteration IQR
// statistics, which carry the quantile sketch's documented tolerance.
func ComputeMetricsStreaming(app string, cur *trace.Cursor, laggardThreshold float64) AppMetrics {
	acc := NewMetricsAccumulator(app, laggardThreshold)
	for cur.Next() {
		b := cur.Block()
		acc.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}
	return acc.Finalize()
}

// Table1Accumulator computes the paper's Table 1 row — process-iteration
// normality pass rates — in a single pass over blocks. The battery runs
// per complete block, so streaming results are exactly the materialised
// ones. Mergeable like MetricsAccumulator; not safe for concurrent use.
type Table1Accumulator struct {
	app    string
	alpha  float64
	total  int
	passed [3]int
}

// NewTable1Accumulator returns an empty accumulator at significance
// alpha.
func NewTable1Accumulator(app string, alpha float64) *Table1Accumulator {
	return &Table1Accumulator{app: app, alpha: alpha}
}

// ObserveBlock implements cluster.BlockObserver: it runs the three-test
// battery on one complete process iteration.
func (a *Table1Accumulator) ObserveBlock(trial, rank, iter int, xs []float64) {
	res := normality.Battery(xs, a.alpha)
	a.total++
	for _, t := range normality.Tests {
		if res[t].Passed() {
			a.passed[t]++
		}
	}
}

// Merge folds another accumulator into this one.
func (a *Table1Accumulator) Merge(o *Table1Accumulator) {
	if o == nil {
		return
	}
	a.total += o.total
	for i := range a.passed {
		a.passed[i] += o.passed[i]
	}
}

// Finalize computes the Table 1 row.
func (a *Table1Accumulator) Finalize() Table1 {
	t1 := Table1{App: a.app}
	if a.total == 0 {
		return t1
	}
	for _, t := range normality.Tests {
		t1.PassRates[t] = float64(a.passed[t]) / float64(a.total)
	}
	return t1
}

// Table1Streaming derives the Table 1 row from a process-iteration cursor
// in a single pass — exact, like Table1Row, but without materialising the
// sample slices.
func Table1Streaming(app string, cur *trace.Cursor, alpha float64) Table1 {
	acc := NewTable1Accumulator(app, alpha)
	for cur.Next() {
		b := cur.Block()
		acc.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}
	return acc.Finalize()
}
