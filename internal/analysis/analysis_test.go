package analysis

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
)

// synthetic builds a tiny dataset with hand-set values.
func synthetic() *trace.Dataset {
	d := trace.NewDataset("syn", 1, 2, 3, 4)
	v := 10.0
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		for i := range xs {
			xs[i] = v * 1e-3
			v += 0.25
		}
	})
	return d
}

func TestReclaimableTime(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// max=4: (4-1)+(4-2)+(4-3)+(4-4) = 6.
	if got := ReclaimableTime(xs); got != 6 {
		t.Fatalf("reclaimable = %v, want 6", got)
	}
}

func TestReclaimableTimeAllEqual(t *testing.T) {
	if got := ReclaimableTime([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("reclaimable = %v, want 0", got)
	}
}

func TestIdleRatio(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	want := 6.0 / (4 * 4)
	if got := IdleRatio(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("idle ratio = %v, want %v", got, want)
	}
	if got := IdleRatio([]float64{0, 0}); got != 0 {
		t.Fatalf("idle ratio of zeros = %v", got)
	}
}

func TestIdleRatioBoundsProperty(t *testing.T) {
	// For positive samples the ratio is always in [0, 1).
	cases := [][]float64{
		{1}, {1, 1}, {0.001, 100}, {3, 2, 1}, {5, 5, 5, 0.1},
	}
	for _, xs := range cases {
		r := IdleRatio(xs)
		if r < 0 || r >= 1 {
			t.Errorf("idle ratio of %v = %v outside [0,1)", xs, r)
		}
	}
}

func TestHasLaggard(t *testing.T) {
	base := []float64{0.0247, 0.0247, 0.0248, 0.0247}
	if HasLaggard(base, 1e-3) {
		t.Error("tight set flagged as laggard")
	}
	withLag := append(append([]float64{}, base...), 0.0290)
	if !HasLaggard(withLag, 1e-3) {
		t.Error("4.3ms laggard not detected")
	}
	// Exactly at threshold: not a laggard (strictly greater).
	exact := []float64{1, 1, 1, 1 + 1e-3}
	if HasLaggard(exact, 1e-3) {
		t.Error("threshold should be exclusive")
	}
}

func TestLaggardsCounting(t *testing.T) {
	d := trace.NewDataset("lag", 1, 1, 4, 8)
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		for i := range xs {
			xs[i] = 0.020
		}
		if iter%2 == 0 {
			xs[0] = 0.020 + 3e-3 // laggard in even iterations
		}
	})
	st := Laggards(d, DefaultLaggardThresholdSec)
	if st.Total != 4 || st.WithLaggard != 2 || st.Fraction != 0.5 {
		t.Fatalf("laggard stats %+v", st)
	}
	if math.Abs(st.MeanMagnitudeSec-3e-3) > 1e-9 {
		t.Fatalf("magnitude = %v", st.MeanMagnitudeSec)
	}
	// Range restriction.
	st13 := LaggardsInRange(d, DefaultLaggardThresholdSec, 1, 3)
	if st13.Total != 2 || st13.WithLaggard != 1 {
		t.Fatalf("ranged laggard stats %+v", st13)
	}
}

func TestFindExampleIterations(t *testing.T) {
	d := trace.NewDataset("ex", 1, 1, 2, 4)
	for i := range d.Times[0][0][0] {
		d.Times[0][0][0][i] = 0.02
	}
	for i := range d.Times[0][0][1] {
		d.Times[0][0][1][i] = 0.02
	}
	d.Times[0][0][1][3] = 0.025
	withLag, without := FindExampleIterations(d, 1e-3, 0, 2)
	if without == nil || without[2] != 0 {
		t.Fatalf("no-laggard example = %v", without)
	}
	if withLag == nil || withLag[2] != 1 {
		t.Fatalf("laggard example = %v", withLag)
	}
	// Restricting to [0,1) finds no laggard example.
	withLag, _ = FindExampleIterations(d, 1e-3, 0, 1)
	if withLag != nil {
		t.Fatalf("unexpected laggard example %v", withLag)
	}
}

func TestComputeMetricsOnSynthetic(t *testing.T) {
	d := synthetic()
	m := ComputeMetrics(d, DefaultLaggardThresholdSec)
	if m.App != "syn" {
		t.Errorf("app = %q", m.App)
	}
	if m.MeanMedianSec <= 0 || m.AvgReclaimableProcSec <= 0 {
		t.Errorf("metrics not positive: %+v", m)
	}
	if m.IdleRatioProc <= 0 || m.IdleRatioProc >= 1 {
		t.Errorf("idle ratio out of range: %v", m.IdleRatioProc)
	}
	if m.IQRMaxSec < m.IQRMeanSec {
		t.Errorf("IQR max %v < mean %v", m.IQRMaxSec, m.IQRMeanSec)
	}
	if s := m.String(); !strings.Contains(s, "syn") || !strings.Contains(s, "idle ratio") {
		t.Errorf("render = %q", s)
	}
}

func TestComputeMetricsEmptyRange(t *testing.T) {
	d := synthetic()
	m := ComputeMetricsInRange(d, 1e-3, 2, 2)
	if m.MeanMedianSec != 0 || m.AvgReclaimableProcSec != 0 {
		t.Errorf("empty range should produce zero metrics: %+v", m)
	}
}

func TestIterationPercentilesAndColumns(t *testing.T) {
	d := synthetic()
	ps := IterationPercentiles(d, []float64{5, 25, 50, 75, 95})
	if len(ps.Values) != d.Iterations {
		t.Fatalf("rows = %d", len(ps.Values))
	}
	med := ps.Column(50)
	if med == nil || len(med) != d.Iterations {
		t.Fatal("median column missing")
	}
	if ps.Column(42) != nil {
		t.Fatal("unknown percentile should be nil")
	}
	// Percentiles are monotone within a row.
	for i, row := range ps.Values {
		for k := 1; k < len(row); k++ {
			if row[k] < row[k-1] {
				t.Fatalf("iteration %d: percentiles not monotone: %v", i, row)
			}
		}
	}
}

func TestIQRStatsAndRangeClamping(t *testing.T) {
	d := synthetic()
	ps := IterationPercentiles(d, nil)
	mean, max := ps.IQRStats(0, d.Iterations)
	if mean <= 0 || max < mean {
		t.Fatalf("iqr stats mean=%v max=%v", mean, max)
	}
	// Out-of-range bounds clamp instead of panicking.
	m2, _ := ps.IQRStats(-5, 100)
	if m2 != mean {
		t.Fatalf("clamped mean %v != %v", m2, mean)
	}
	// Missing percentiles yield zeros.
	ps2 := IterationPercentiles(d, []float64{50})
	if m, x := ps2.IQRStats(0, 1); m != 0 || x != 0 {
		t.Fatal("IQRStats without quartiles should be zero")
	}
}

func TestPercentileSeriesCSV(t *testing.T) {
	d := synthetic()
	ps := IterationPercentiles(d, []float64{25, 50, 75})
	csv := ps.CSV(1e-3)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "iteration,p25,p50,p75" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != d.Iterations+1 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestApplicationHistogramBins(t *testing.T) {
	d := synthetic()
	h := ApplicationHistogram(d, Fig3BinWidthSec)
	if h.Total != d.NumSamples() {
		t.Fatalf("histogram total %d != %d", h.Total, d.NumSamples())
	}
	if h.Width != 10e-6 {
		t.Fatalf("bin width = %v", h.Width)
	}
}

func TestProcessIterationHistogram(t *testing.T) {
	d := synthetic()
	h := ProcessIterationHistogram(d, 0, 1, 2, Fig9BinWidthSec)
	if h.Total != d.Threads {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestNormalitySummaryAndTable1OnDegenerate(t *testing.T) {
	// All-constant dataset: every process iteration must be counted as
	// rejected (degenerate), giving a 0% pass rate.
	d := trace.NewDataset("const", 1, 1, 3, 48)
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		for i := range xs {
			xs[i] = 0.02
		}
	})
	s := ProcessIterationNormality(d, normality.DefaultAlpha)
	for _, test := range normality.Tests {
		if s.PassRate(test) != 0 {
			t.Errorf("%v: pass rate %v on constant data", test, s.PassRate(test))
		}
	}
	t1 := Table1Row(d, normality.DefaultAlpha)
	if t1.App != "const" {
		t.Errorf("table1 app = %q", t1.App)
	}
	if !strings.Contains(t1.String(), "const") {
		t.Errorf("table1 render = %q", t1.String())
	}
	if !strings.Contains(s.String(), "process iteration") {
		t.Errorf("summary render = %q", s.String())
	}
}

func TestNormalitySummaryPassedSets(t *testing.T) {
	// One clearly-normal iteration embedded among constant ones; the
	// passed set should contain only that iteration's index.
	d := trace.NewDataset("mix", 1, 1, 3, 64)
	for i := range d.Times[0][0][1] {
		// Deterministic near-normal values via the inverse CDF trick.
		d.Times[0][0][1][i] = 0.02 + 1e-3*float64(i%8) - 3.5e-3 // uniform-ish, will often pass AD? keep loose
	}
	for _, iter := range []int{0, 2} {
		for i := range d.Times[0][0][iter] {
			d.Times[0][0][iter][i] = 0.02
		}
	}
	s := ProcessIterationNormality(d, normality.DefaultAlpha)
	for _, test := range normality.Tests {
		for _, idx := range s.PassedSets[test] {
			if idx != 1 {
				t.Errorf("%v: unexpected passing set %d", test, idx)
			}
		}
	}
}

func TestNormalitySummaryEmptyTotal(t *testing.T) {
	s := &NormalitySummary{}
	if s.PassRate(normality.DAgostino) != 0 {
		t.Fatal("empty summary pass rate should be 0")
	}
}

func TestTable1JSONRoundTrip(t *testing.T) {
	orig := Table1{App: "minife", PassRates: [3]float64{0.046, 0.002, 0.009}}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Wire format keys rates by test slug, not position.
	for _, want := range []string{`"app":"minife"`, `"dagostino":0.046`, `"shapiro_wilk":0.002`, `"anderson_darling":0.009`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshalled %s missing %s", data, want)
		}
	}
	var back Table1
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip: got %+v, want %+v", back, orig)
	}
}
