package analysis

import (
	"fmt"
	"strings"

	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// LaggardTimeline counts, for every application iteration, how many of
// its process iterations (trials x ranks) contain a laggard — the
// "sporadic laggard threads" visible along the x-axis of the paper's
// Figure 6 percentile plot.
type LaggardTimeline struct {
	// Counts[i] is the number of (trial, rank) pairs whose iteration i
	// contains a laggard.
	Counts []int
	// PerIteration is trials x ranks (the denominator for each count).
	PerIteration int
	ThresholdSec float64
}

// NewLaggardTimeline scans the dataset.
func NewLaggardTimeline(d *trace.Dataset, threshold float64) *LaggardTimeline {
	tl := &LaggardTimeline{
		Counts:       make([]int, d.Iterations),
		PerIteration: d.Trials * d.Ranks,
		ThresholdSec: threshold,
	}
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		if stats.Max(xs)-stats.Median(xs) > threshold {
			tl.Counts[iter]++
		}
	})
	return tl
}

// ActiveIterations returns how many iterations have at least one laggard.
func (tl *LaggardTimeline) ActiveIterations() int {
	n := 0
	for _, c := range tl.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// MaxCount returns the largest per-iteration laggard count.
func (tl *LaggardTimeline) MaxCount() int {
	max := 0
	for _, c := range tl.Counts {
		if c > max {
			max = c
		}
	}
	return max
}

// Burstiness returns the ratio of the variance of per-iteration counts
// to their mean (the dispersion index). A Poisson-like sporadic process
// scores ~1; clustered laggards score higher; a constant rate scores
// lower.
func (tl *LaggardTimeline) Burstiness() float64 {
	xs := make([]float64, len(tl.Counts))
	for i, c := range tl.Counts {
		xs[i] = float64(c)
	}
	mean := stats.Mean(xs)
	if mean == 0 {
		return 0
	}
	return stats.Variance(xs) / mean
}

// CSV renders "iteration,laggard_count" rows.
func (tl *LaggardTimeline) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,laggard_count\n")
	for i, c := range tl.Counts {
		fmt.Fprintf(&b, "%d,%d\n", i, c)
	}
	return b.String()
}
