package analysis

import (
	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// LoadBalance returns the POP Centre of Excellence Load Balance metric
// for one sample set: mean(execution time) / max(execution time). A
// perfectly balanced region scores 1; the lower the score the more time
// is lost waiting for the slowest participant. The paper's related work
// (Orland & Terboven) extends this process metric to threads; here it is
// applied to thread compute times directly.
func LoadBalance(xs []float64) float64 {
	max := stats.Max(xs)
	if max <= 0 {
		return 0
	}
	return stats.Mean(xs) / max
}

// LoadBalanceStats summarises the per-process-iteration Load Balance of
// a dataset.
type LoadBalanceStats struct {
	Mean float64
	Min  float64
	P5   float64
}

// DatasetLoadBalance computes LoadBalanceStats over every process
// iteration. Note the identity LB = 1 - IdleRatio for the same sample
// set: the two metrics are complementary views of the same idle time.
func DatasetLoadBalance(d *trace.Dataset) LoadBalanceStats {
	vals := make([]float64, 0, d.NumProcessIterations())
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		vals = append(vals, LoadBalance(xs))
	})
	sorted := stats.Sorted(vals)
	return LoadBalanceStats{
		Mean: stats.Mean(vals),
		Min:  stats.Min(vals),
		P5:   stats.PercentileSorted(sorted, 5),
	}
}
