package analysis

import (
	"earlybird/internal/sortx"
	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// DefaultLaggardThresholdSec is the paper's laggard rule: a process
// iteration contains a laggard when its latest thread arrives more than
// 1 ms after the median thread (chosen as roughly 5% of the median
// arrival time, Section 4.2.1).
const DefaultLaggardThresholdSec = 1e-3

// HasLaggard reports whether the latest arrival exceeds the median by
// more than threshold seconds.
func HasLaggard(xs []float64, threshold float64) bool {
	return stats.Max(xs)-stats.Median(xs) > threshold
}

// LaggardStats summarises laggard occurrence over all process iterations
// of a dataset.
type LaggardStats struct {
	Total       int
	WithLaggard int
	// Fraction = WithLaggard / Total (paper: 22.4% MiniFE, 4.8% MiniMD
	// phase two).
	Fraction float64
	// MeanMagnitudeSec is the mean of (max - median) over laggard
	// iterations only.
	MeanMagnitudeSec float64
}

// Laggards classifies every process iteration of d with the given
// threshold.
func Laggards(d *trace.Dataset, threshold float64) LaggardStats {
	return LaggardsInRange(d, threshold, 0, d.Iterations)
}

// LaggardsInRange classifies process iterations with iteration index in
// [fromIter, toIter) — used to analyse MiniMD's two phases separately.
func LaggardsInRange(d *trace.Dataset, threshold float64, fromIter, toIter int) LaggardStats {
	var st LaggardStats
	magSum := 0.0
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		if iter < fromIter || iter >= toIter {
			return
		}
		st.Total++
		mag := stats.Max(xs) - stats.Median(xs)
		if mag > threshold {
			st.WithLaggard++
			magSum += mag
		}
	})
	if st.Total > 0 {
		st.Fraction = float64(st.WithLaggard) / float64(st.Total)
	}
	if st.WithLaggard > 0 {
		st.MeanMagnitudeSec = magSum / float64(st.WithLaggard)
	}
	return st
}

// LaggardsStream classifies every process iteration yielded by the
// cursor — the cursor-native counterpart of Laggards, with identical
// results (each block is a complete iteration when observed) and
// O(threads) live memory. Strategy-lab consumers use it to tune
// laggard-aware delivery without materialising the nested view.
func LaggardsStream(cur *trace.Cursor, threshold float64) LaggardStats {
	var st LaggardStats
	magSum := 0.0
	var scratch []float64
	for cur.Next() {
		b := cur.Block()
		if len(b.Times) == 0 {
			continue
		}
		st.Total++
		scratch = append(scratch[:0], b.Times...)
		sortx.Sort(scratch)
		mag := scratch[len(scratch)-1] - stats.PercentileSorted(scratch, 50)
		if mag > threshold {
			st.WithLaggard++
			magSum += mag
		}
	}
	if st.Total > 0 {
		st.Fraction = float64(st.WithLaggard) / float64(st.Total)
	}
	if st.WithLaggard > 0 {
		st.MeanMagnitudeSec = magSum / float64(st.WithLaggard)
	}
	return st
}

// FindExampleIterations returns the coordinates of one process iteration
// with a laggard and one without, for rendering the paper's example
// histograms (Figures 5 and 7). Either return value may be nil if no such
// iteration exists in [fromIter, toIter).
func FindExampleIterations(d *trace.Dataset, threshold float64, fromIter, toIter int) (withLaggard, without []int) {
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		if iter < fromIter || iter >= toIter {
			return
		}
		if HasLaggard(xs, threshold) {
			if withLaggard == nil {
				withLaggard = []int{trial, rank, iter}
			}
		} else if without == nil {
			without = []int{trial, rank, iter}
		}
	})
	return withLaggard, without
}
