// Package noise models operating-system interference on compute threads.
//
// The paper attributes laggard threads in part to OS noise (citing Morari
// et al.'s quantitative noise analysis). This package provides composable
// noise injectors that perturb a thread's nominal compute time the way
// real interference would: periodic daemons preempting the core, random
// interrupts, and persistent per-core slowdowns. The cluster runner applies
// them to live kernels and the workload models use them to validate the
// analysis pipeline's laggard detection.
package noise

import (
	"time"

	"earlybird/internal/rng"
)

// Model perturbs a nominal compute duration into an observed one. base is
// the noise-free compute time of one thread in one region; the returned
// duration must be >= 0.
type Model interface {
	Perturb(s *rng.Source, base time.Duration) time.Duration
}

// None returns base unchanged.
type None struct{}

// Perturb implements Model.
func (None) Perturb(_ *rng.Source, base time.Duration) time.Duration { return base }

// PeriodicDaemon models a system daemon that wakes every Period and steals
// Cost of CPU when it lands on this core. The number of wakeups during a
// region is Poisson with mean base/Period scaled by the probability
// Affinity that the daemon runs on the observed core.
type PeriodicDaemon struct {
	Period   time.Duration
	Cost     time.Duration
	Affinity float64 // probability a wakeup lands on this core, [0,1]
}

// Perturb implements Model.
func (d PeriodicDaemon) Perturb(s *rng.Source, base time.Duration) time.Duration {
	if d.Period <= 0 || d.Cost <= 0 || d.Affinity <= 0 {
		return base
	}
	mean := float64(base) / float64(d.Period) * d.Affinity
	hits := s.Poisson(mean)
	return base + time.Duration(hits)*d.Cost
}

// RandomInterrupt models asynchronous interrupts arriving at Rate per
// second, each costing an exponentially distributed service time with mean
// MeanCost.
type RandomInterrupt struct {
	Rate     float64 // interrupts per second of compute
	MeanCost time.Duration
}

// Perturb implements Model.
func (r RandomInterrupt) Perturb(s *rng.Source, base time.Duration) time.Duration {
	if r.Rate <= 0 || r.MeanCost <= 0 {
		return base
	}
	n := s.Poisson(r.Rate * base.Seconds())
	extra := time.Duration(0)
	for i := 0; i < n; i++ {
		extra += time.Duration(s.Exp(float64(r.MeanCost)))
	}
	return base + extra
}

// CoreSlowdown models a persistent slow core (thermal throttling, a noisy
// neighbour): with probability Prob the whole region runs Factor times
// slower. This is the paper's high-magnitude laggard generator.
type CoreSlowdown struct {
	Prob   float64
	Factor float64 // > 1
}

// Perturb implements Model.
func (c CoreSlowdown) Perturb(s *rng.Source, base time.Duration) time.Duration {
	if c.Prob <= 0 || c.Factor <= 1 {
		return base
	}
	if s.Bernoulli(c.Prob) {
		return time.Duration(float64(base) * c.Factor)
	}
	return base
}

// Burst models correlated interference: noise arrives in bursts (a
// co-scheduled batch job, a page-cache writeback storm, a network
// interrupt flood) rather than as independent point events. Bursts start
// at rate RatePerSec per second of compute; each lasts an exponentially
// distributed time with mean MeanDuration, and while one overlaps the
// region the core runs Factor times slower for the overlapped stretch.
// The burst length is clamped to the region, so the model degrades to
// RandomInterrupt-like point costs only when MeanDuration << base — for
// comparable magnitudes it produces the heavy, correlated tail that
// independent-interrupt models cannot (the run of consecutive slow
// threads the paper's laggard plots show).
type Burst struct {
	RatePerSec   float64       // burst arrivals per second of compute
	MeanDuration time.Duration // mean burst length (exponential)
	Factor       float64       // slowdown while a burst is active, > 1
}

// Perturb implements Model.
func (b Burst) Perturb(s *rng.Source, base time.Duration) time.Duration {
	if b.RatePerSec <= 0 || b.MeanDuration <= 0 || b.Factor <= 1 {
		return base
	}
	n := s.Poisson(b.RatePerSec * base.Seconds())
	extra := time.Duration(0)
	for i := 0; i < n; i++ {
		overlap := time.Duration(s.Exp(float64(b.MeanDuration)))
		if overlap > base {
			overlap = base
		}
		extra += time.Duration(float64(overlap) * (b.Factor - 1))
	}
	return base + extra
}

// Stack applies each model in order, feeding the output of one into the
// next.
type Stack []Model

// Perturb implements Model.
func (st Stack) Perturb(s *rng.Source, base time.Duration) time.Duration {
	d := base
	for _, m := range st {
		d = m.Perturb(s, d)
	}
	if d < 0 {
		d = 0
	}
	return d
}
