package noise

import (
	"testing"
	"time"

	"earlybird/internal/rng"
)

func TestNonePassthrough(t *testing.T) {
	s := rng.New(1)
	base := 25 * time.Millisecond
	if got := (None{}).Perturb(s, base); got != base {
		t.Fatalf("None changed duration: %v", got)
	}
}

func TestPeriodicDaemonAddsCost(t *testing.T) {
	s := rng.New(2)
	d := PeriodicDaemon{Period: time.Millisecond, Cost: 100 * time.Microsecond, Affinity: 1}
	base := 25 * time.Millisecond
	sum := time.Duration(0)
	const n = 2000
	for i := 0; i < n; i++ {
		got := d.Perturb(s, base)
		if got < base {
			t.Fatalf("noise shortened compute: %v < %v", got, base)
		}
		sum += got - base
	}
	// Expected extra per region: ~25 wakeups x 100us = 2.5ms.
	mean := sum / n
	if mean < 2*time.Millisecond || mean > 3*time.Millisecond {
		t.Errorf("mean extra = %v, want ~2.5ms", mean)
	}
}

func TestPeriodicDaemonDisabledConfigs(t *testing.T) {
	s := rng.New(3)
	base := time.Millisecond
	for _, d := range []PeriodicDaemon{
		{Period: 0, Cost: time.Microsecond, Affinity: 1},
		{Period: time.Millisecond, Cost: 0, Affinity: 1},
		{Period: time.Millisecond, Cost: time.Microsecond, Affinity: 0},
	} {
		if got := d.Perturb(s, base); got != base {
			t.Errorf("disabled daemon %+v perturbed: %v", d, got)
		}
	}
}

func TestRandomInterruptMean(t *testing.T) {
	s := rng.New(4)
	r := RandomInterrupt{Rate: 1000, MeanCost: 50 * time.Microsecond}
	base := 20 * time.Millisecond // expect ~20 interrupts x 50us = 1ms extra
	sum := time.Duration(0)
	const n = 2000
	for i := 0; i < n; i++ {
		got := r.Perturb(s, base)
		if got < base {
			t.Fatalf("interrupts shortened compute")
		}
		sum += got - base
	}
	mean := sum / n
	if mean < 700*time.Microsecond || mean > 1300*time.Microsecond {
		t.Errorf("mean extra = %v, want ~1ms", mean)
	}
}

func TestCoreSlowdownProbability(t *testing.T) {
	s := rng.New(5)
	c := CoreSlowdown{Prob: 0.25, Factor: 2}
	base := 10 * time.Millisecond
	slow := 0
	const n = 10000
	for i := 0; i < n; i++ {
		got := c.Perturb(s, base)
		switch got {
		case base:
		case 2 * base:
			slow++
		default:
			t.Fatalf("unexpected duration %v", got)
		}
	}
	rate := float64(slow) / n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("slowdown rate = %v, want ~0.25", rate)
	}
}

func TestBurstMeanAndClamp(t *testing.T) {
	s := rng.New(9)
	// ~2 bursts per region of 20ms, each ~5ms at 3x: expected extra
	// ≈ 2 x 5ms x (3-1) = 20ms (slightly less from the clamp).
	b := Burst{RatePerSec: 100, MeanDuration: 5 * time.Millisecond, Factor: 3}
	base := 20 * time.Millisecond
	sum := time.Duration(0)
	const n = 4000
	for i := 0; i < n; i++ {
		got := b.Perturb(s, base)
		if got < base {
			t.Fatalf("burst shortened compute: %v < %v", got, base)
		}
		// One burst can at most double the overlapped region per
		// (Factor-1); with the clamp a single burst adds <= base*(Factor-1).
		sum += got - base
	}
	mean := sum / n
	if mean < 12*time.Millisecond || mean > 24*time.Millisecond {
		t.Errorf("mean extra = %v, want ~17-20ms", mean)
	}
}

// TestBurstCorrelation pins what makes Burst different from
// RandomInterrupt at matched expected cost: bursts concentrate the same
// total interference into far fewer, far larger events, so the
// per-region extra has a much heavier tail (higher variance).
func TestBurstCorrelation(t *testing.T) {
	base := 20 * time.Millisecond
	// Matched expected extra ~2ms per region:
	// interrupts: 40 events x 50us; bursts: 0.2 events x 5ms x (3-1).
	ri := RandomInterrupt{Rate: 2000, MeanCost: 50 * time.Microsecond}
	bu := Burst{RatePerSec: 10, MeanDuration: 5 * time.Millisecond, Factor: 3}
	const n = 6000
	varOf := func(perturb func(*rng.Source, time.Duration) time.Duration, seed uint64) (mean, variance float64) {
		s := rng.New(seed)
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := (perturb(s, base) - base).Seconds()
			sum += x
			sumsq += x * x
		}
		mean = sum / n
		return mean, sumsq/n - mean*mean
	}
	mi, vi := varOf(ri.Perturb, 10)
	mb, vb := varOf(bu.Perturb, 11)
	if mi < 1e-3 || mi > 3e-3 || mb < 1e-3 || mb > 3e-3 {
		t.Fatalf("means not matched: interrupt %v, burst %v (want ~2ms each)", mi, mb)
	}
	if vb < 10*vi {
		t.Errorf("burst variance %v not >> interrupt variance %v at matched mean", vb, vi)
	}
}

func TestBurstDisabledConfigs(t *testing.T) {
	s := rng.New(12)
	base := time.Millisecond
	for _, b := range []Burst{
		{RatePerSec: 0, MeanDuration: time.Millisecond, Factor: 2},
		{RatePerSec: 10, MeanDuration: 0, Factor: 2},
		{RatePerSec: 10, MeanDuration: time.Millisecond, Factor: 1},
	} {
		if got := b.Perturb(s, base); got != base {
			t.Errorf("disabled burst %+v perturbed: %v", b, got)
		}
	}
}

func TestStackComposes(t *testing.T) {
	s := rng.New(6)
	st := Stack{
		CoreSlowdown{Prob: 1, Factor: 2},
		CoreSlowdown{Prob: 1, Factor: 3},
	}
	base := time.Millisecond
	if got := st.Perturb(s, base); got != 6*time.Millisecond {
		t.Fatalf("stack = %v, want 6ms", got)
	}
}

func TestStackEmptyIsIdentity(t *testing.T) {
	s := rng.New(7)
	if got := (Stack{}).Perturb(s, time.Second); got != time.Second {
		t.Fatalf("empty stack = %v", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := rng.New(8)
	for _, lambda := range []float64{0.5, 5, 100} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if mean < lambda*0.95-0.05 || mean > lambda*1.05+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("nonpositive lambda should give 0")
	}
}
