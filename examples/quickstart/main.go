// Quickstart: run a thread-timing study of one proxy application, look at
// its arrival statistics, and ask whether early-bird message delivery is
// feasible for it — the paper's whole pipeline in twenty lines.
package main

import (
	"fmt"
	"log"
	"os"

	"earlybird"
)

func main() {
	// A reduced geometry keeps the quickstart under a second; swap in
	// earlybird.PaperGeometry() for the full 10 x 8 x 200 x 48 study.
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "minife",
		Geometry: earlybird.QuickGeometry(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Section 4.2 scalar metrics: median arrival, laggards, reclaimable
	// idle time.
	fmt.Println(study.Metrics())

	// Table 1: is a process iteration's thread-arrival sample normal?
	fmt.Println(study.Table1())

	// Section 5: the feasibility verdict, with delivery strategies
	// evaluated on an Omni-Path-like fabric at 1 MiB per thread.
	assessment := study.Feasibility(1<<20, earlybird.OmniPath(), 1e-3)
	fmt.Print(assessment)

	study.WriteSummary(os.Stdout)
}
