// custom-workload shows how to study your own application's thread
// behaviour: define a workload model (or wrap measured data), run the
// study, and get the same analysis and feasibility verdict the paper
// derives for the Mantevo proxies.
//
// The example models two hypothetical applications:
//
//   - "pipeline": a stage-imbalanced solver where one thread per
//     iteration carries an extra reduction (the single-laggard assumption
//     of the original partitioned-communication paper); and
//   - "adaptive": an AMR-style code whose per-thread work follows a
//     lognormal distribution (heavy right tail).
package main

import (
	"fmt"
	"log"

	"earlybird"
	"earlybird/internal/rng"
	"earlybird/internal/workload"
)

func main() {
	geometry := earlybird.QuickGeometry()

	// A built-in building block: exactly one laggard per iteration.
	pipeline := &workload.SingleLaggardModel{
		AppName:   "pipeline",
		MedianSec: 12e-3,
		JitterSec: 0.05e-3,
		LagSec:    4e-3,
	}

	// A fully custom model via the Func adapter: lognormal work per
	// thread, so a heavy tail of slow threads every iteration.
	adaptive := &workload.Func{
		AppName: "adaptive",
		Fill: func(s *rng.Source, trial, rank, iter int, out []float64) {
			for i := range out {
				out[i] = 8e-3 * s.LogNormal(0, 0.35)
			}
		},
	}

	for _, model := range []workload.Model{pipeline, adaptive} {
		study, err := earlybird.NewStudy(earlybird.Options{
			Model:    model,
			Geometry: geometry,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", study.App())
		fmt.Println(study.Metrics())
		fmt.Println(study.Table1())
		a := study.Feasibility(256<<10, earlybird.OmniPath(), 0.5e-3)
		fmt.Print(a)
		fmt.Println()
	}
}
