// minife-study reproduces the paper's MiniFE deep-dive (Section 4.2.1):
// the per-iteration percentile series of Figure 4, the two arrival
// classes of Figure 5 (with and without a laggard thread), and the
// laggard statistics behind the "22.4% of iterations" observation.
//
// It also demonstrates the live-kernel path: the same instrumentation
// applied to a real CSR matrix-vector product on this machine.
package main

import (
	"fmt"
	"log"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/miniapps"
	"earlybird/internal/omp"
	"earlybird/internal/simclock"
	"earlybird/internal/workload"
)

func main() {
	// --- Calibrated model study (reproduces the paper's numbers). ---
	cfg := cluster.Config{Trials: 4, Ranks: 8, Iterations: 100, Threads: 48, Seed: 1}
	ds, err := cluster.Run(workload.DefaultMiniFE(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 4: percentile series and its left-skew signature.
	ps := analysis.IterationPercentiles(ds, nil)
	iqrMean, iqrMax := ps.IQRStats(0, cfg.Iterations)
	fmt.Printf("Figure 4: IQR mean %.2f ms (paper 0.18), max %.2f ms (paper 4.24)\n",
		1e3*iqrMean, 1e3*iqrMax)
	fmt.Printf("early-arrival asymmetry: %.3f ms (positive = 5th/25th further from median)\n\n",
		1e3*ps.SkewAsymmetry())

	// Figure 5: the two arrival classes.
	st := analysis.Laggards(ds, analysis.DefaultLaggardThresholdSec)
	fmt.Printf("laggard iterations: %.1f%% (paper: 22.4%%)\n\n", 100*st.Fraction)
	lag, noLag := analysis.FindExampleIterations(ds, analysis.DefaultLaggardThresholdSec, 0, cfg.Iterations)
	if noLag != nil {
		fmt.Println("Figure 5a — no laggard (50us bins):")
		h := analysis.ProcessIterationHistogram(ds, noLag[0], noLag[1], noLag[2], analysis.Fig5BinWidthSec)
		fmt.Print(h.Render(20, 1e-3, "ms"))
	}
	if lag != nil {
		fmt.Println("\nFigure 5b — with laggard (50us bins):")
		h := analysis.ProcessIterationHistogram(ds, lag[0], lag[1], lag[2], analysis.Fig5BinWidthSec)
		fmt.Print(h.Render(20, 1e-3, "ms"))
	}

	// --- Live instrumented kernel (Listing 1 on a real mat-vec). ---
	fmt.Println("\nlive CSR mat-vec on this host (4 threads, 3 iterations):")
	pool := omp.NewPool(4)
	defer pool.Close()
	app := miniapps.NewMiniFE(48, 48, 48)
	rec := miniapps.Run(app, pool, simclock.NewReal(), 3)
	for iter := 0; iter < rec.Iterations(); iter++ {
		fmt.Printf("  iter %d thread compute times:", iter)
		for th := 0; th < rec.Threads(); th++ {
			fmt.Printf(" %.2fms", 1e3*rec.ComputeTime(iter, th).Seconds())
		}
		fmt.Println()
	}
}
