// Example streaming-study analyses a study at 100x the paper's geometry
// — 76.8 million samples, a 614 MB tensor if materialised — in bounded
// memory: the streaming pipeline feeds every produced process iteration
// to online accumulators (exact moments, exact Table 1, sketch-based
// percentiles) and discards the samples immediately.
//
// Run with -quick for the paper's own geometry (768000 samples).
package main

import (
	"flag"
	"fmt"
	"runtime"

	"earlybird"
)

func main() {
	quick := flag.Bool("quick", false, "run at the paper's geometry instead of 100x")
	app := flag.String("app", "minife", "application model (minife|minimd|miniqmc)")
	flag.Parse()

	geom := earlybird.HugeGeometry()
	if *quick {
		geom = earlybird.PaperGeometry()
	}
	samples := geom.Trials * geom.Ranks * geom.Iterations * geom.Threads
	fmt.Printf("streaming %s at %d x %d x %d x %d = %d samples (%.0f MB if materialised)\n",
		*app, geom.Trials, geom.Ranks, geom.Iterations, geom.Threads,
		samples, float64(samples)*8/1e6)

	res, err := earlybird.StreamStudy(earlybird.Options{App: *app, Geometry: geom})
	if err != nil {
		panic(err)
	}

	fmt.Println(res.Metrics) // Section 4.2 scalars (IQR sketch-estimated)
	fmt.Println(res.Table1)  // Table 1 normality row (exact)
	s := res.Summary()
	fmt.Printf("summary: mean %.2f ms, stddev %.2f ms, p5 %.2f ms, median %.2f ms, p95 %.2f ms, max %.2f ms\n",
		1e3*s.Mean, 1e3*s.StdDev, 1e3*s.P5, 1e3*s.Median, 1e3*s.P95, 1e3*s.Max)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("heap in use after run: %.0f MB (dataset would be %.0f MB)\n",
		float64(ms.HeapInuse)/1e6, float64(samples)*8/1e6)
}
