//go:build !race

package main

// raceEnabled reports whether the race detector is compiled in; the huge
// bounded-memory test skips under -race, where the 76.8M-sample fill is
// an order of magnitude slower and heap accounting differs.
const raceEnabled = false
