package main

import (
	"runtime"
	"testing"

	"earlybird"
)

// TestHugeGeometryIs100xPaper pins the contract the example advertises.
func TestHugeGeometryIs100xPaper(t *testing.T) {
	huge, paper := earlybird.HugeGeometry(), earlybird.PaperGeometry()
	hugeSamples := huge.Trials * huge.Ranks * huge.Iterations * huge.Threads
	paperSamples := paper.Trials * paper.Ranks * paper.Iterations * paper.Threads
	if hugeSamples < 100*paperSamples {
		t.Fatalf("HugeGeometry has %d samples, want >= 100x the paper's %d", hugeSamples, paperSamples)
	}
}

// TestStreamingStudyBoundedMemory runs the full 100x-paper study through
// the streaming pipeline and asserts the heap stays far below the size of
// the dataset it analysed: live heap growth under 1/8 of the tensor and
// OS-visible heap growth under 1/2 — materialising the 614 MB tensor
// would break both bounds on its own. Skipped with -short and under
// -race (where the 76.8M-sample fill is an order of magnitude slower).
func TestStreamingStudyBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("76.8M-sample study skipped with -short")
	}
	if raceEnabled {
		t.Skip("76.8M-sample study skipped under -race")
	}

	geom := earlybird.HugeGeometry()
	datasetBytes := uint64(geom.Trials*geom.Ranks*geom.Iterations*geom.Threads) * 8

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	res, err := earlybird.StreamStudy(earlybird.Options{App: "minife", Geometry: geom})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if got := int64(after.HeapAlloc) - int64(before.HeapAlloc); got > int64(datasetBytes/8) {
		t.Errorf("live heap grew %d MB, want < %d MB (dataset is %d MB)",
			got/1e6, datasetBytes/8/1e6, datasetBytes/1e6)
	}
	if got := int64(after.HeapSys) - int64(before.HeapSys); got > int64(datasetBytes/2) {
		t.Errorf("heap footprint grew %d MB, want < %d MB (dataset is %d MB)",
			got/1e6, datasetBytes/2/1e6, datasetBytes/1e6)
	}

	// The Table-1 metrics must be present and sane at this scale:
	// MiniFE's process iterations almost never pass normality (paper:
	// <= 3%), its laggard fraction sits near 22.4%, and its mean median
	// near 26.3 ms.
	if res.Samples() != int64(geom.Trials*geom.Ranks*geom.Iterations*geom.Threads) {
		t.Fatalf("streamed %d samples, want %d", res.Samples(), geom.Trials*geom.Ranks*geom.Iterations*geom.Threads)
	}
	for _, rate := range res.Table1.PassRates {
		if rate < 0 || rate > 0.10 {
			t.Errorf("Table 1 pass rate %.3f outside [0, 0.10]", rate)
		}
	}
	if m := res.Metrics; m.MeanMedianSec < 20e-3 || m.MeanMedianSec > 35e-3 {
		t.Errorf("mean median %.2f ms implausible for MiniFE", 1e3*m.MeanMedianSec)
	}
	if f := res.Metrics.LaggardFraction; f < 0.10 || f > 0.40 {
		t.Errorf("laggard fraction %.3f implausible for MiniFE", f)
	}
}
