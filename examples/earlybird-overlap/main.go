// earlybird-overlap demonstrates both layers of the partitioned
// communication substrate:
//
//  1. an executable early-bird transfer: compute threads of a sender rank
//     mark their partition ready the moment they finish, while the
//     receiver polls Parrived and observes partitions landing before the
//     final thread completes (Figure 1 of the paper); and
//  2. the analytical overlap comparison of delivery strategies over the
//     three applications' measured arrival distributions (Section 5).
package main

import (
	"fmt"
	"log"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/mpi"
	"earlybird/internal/network"
	"earlybird/internal/omp"
	"earlybird/internal/partcomm"
	"earlybird/internal/workload"
)

func main() {
	executableDemo()
	analyticalComparison()
}

// executableDemo runs a real partitioned transfer between two in-process
// ranks: 8 compute threads with staggered work, each calling Pready as it
// finishes.
func executableDemo() {
	const (
		threads  = 8
		partSize = 4096
	)
	world := mpi.NewWorld(2)
	err := world.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			buf := make([]byte, threads*partSize)
			for i := range buf {
				buf[i] = byte(i)
			}
			ps, err := partcomm.NewSend(c, 1, 1, buf, threads)
			if err != nil {
				return err
			}
			pool := omp.NewPool(threads)
			defer pool.Close()
			pool.Parallel(func(tc *omp.ThreadContext) {
				t := tc.ThreadNum()
				// Staggered compute: thread t works ~ (t+1) x 2 ms,
				// so partitions become ready early-bird style.
				time.Sleep(time.Duration(t+1) * 2 * time.Millisecond)
				if err := ps.Pready(t); err != nil {
					panic(err)
				}
			})
			return nil
		}
		pr, err := partcomm.NewRecv(c, 0, 1, threads*partSize, threads)
		if err != nil {
			return err
		}
		// Poll: count how many partitions have landed before the last
		// thread (16 ms) could possibly be done.
		time.Sleep(9 * time.Millisecond)
		early := pr.ArrivedCount()
		for i := 0; i < threads; i++ {
			if _, err := pr.Parrived(i); err != nil {
				return err
			}
		}
		early = pr.ArrivedCount()
		pr.Wait()
		fmt.Printf("executable early-bird: %d/%d partitions had landed while the last threads were still computing\n",
			early, threads)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// analyticalComparison evaluates bulk vs fine-grained vs binned delivery
// over the calibrated arrival data of the three applications.
func analyticalComparison() {
	cfg := cluster.Config{Trials: 2, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}
	fabric := network.OmniPath()
	strategies := []partcomm.Strategy{
		partcomm.Bulk{},
		partcomm.FineGrained{},
		partcomm.Binned{TimeoutSec: 1e-3},
	}
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(),
		workload.DefaultMiniMD(),
		workload.DefaultMiniQMC(),
	} {
		ds, err := cluster.Run(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (1 MiB per thread portion, Omni-Path model):\n", ds.App)
		for _, r := range partcomm.Evaluate(ds, 1<<20, fabric, strategies) {
			fmt.Printf("  %s\n", r)
		}
	}
}
