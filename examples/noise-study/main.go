// noise-study demonstrates the OS-noise attribution question behind the
// paper's laggard analysis (Section 2 cites OS noise as a laggard
// source): inject controlled interference into a clean workload and
// watch what the analysis pipeline reports.
//
// Three scenarios run over the same clean base workload:
//
//   - no noise: a tight normal arrival distribution;
//   - a periodic daemon: everyone pays; the distribution shifts but no
//     laggards appear;
//   - a rare core slowdown: classic laggards at close to the predicted
//     rate, which is what early-bird communication can exploit.
package main

import (
	"fmt"
	"log"
	"time"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/noise"
	"earlybird/internal/workload"
)

func main() {
	base := &workload.NormalModel{AppName: "clean", MedianSec: 20e-3, SigmaSec: 0.05e-3}
	cfg := cluster.Config{Trials: 2, Ranks: 4, Iterations: 80, Threads: 48, Seed: 7}

	scenarios := []struct {
		name  string
		model workload.Model
	}{
		{"clean", base},
		{"daemon (100us period, 5us cost)", &workload.Noisy{
			Base:   base,
			Noise:  noise.PeriodicDaemon{Period: 100 * time.Microsecond, Cost: 5 * time.Microsecond, Affinity: 1},
			Suffix: "+daemon",
		}},
		{"core slowdown (p=1%, 1.2x)", &workload.Noisy{
			Base:   base,
			Noise:  noise.CoreSlowdown{Prob: 0.01, Factor: 1.2},
			Suffix: "+slowdown",
		}},
		{"interrupts (2kHz, 30us)", &workload.Noisy{
			Base:   base,
			Noise:  noise.RandomInterrupt{Rate: 2000, MeanCost: 30 * time.Microsecond},
			Suffix: "+irq",
		}},
	}

	for _, sc := range scenarios {
		ds, err := cluster.Run(sc.model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := analysis.ComputeMetrics(ds, analysis.DefaultLaggardThresholdSec)
		lb := analysis.DatasetLoadBalance(ds)
		tl := analysis.NewLaggardTimeline(ds, analysis.DefaultLaggardThresholdSec)
		fmt.Printf("%-34s median %6.2f ms  laggards %5.1f%%  load balance %.4f  laggard-active iterations %d/%d\n",
			sc.name, 1e3*m.MeanMedianSec, 100*m.LaggardFraction, lb.Mean,
			tl.ActiveIterations(), cfg.Iterations)
	}

	fmt.Println("\nOnly asymmetric interference (the slowdown) creates laggards — the")
	fmt.Println("signature early-bird communication exploits; uniform noise (daemon,")
	fmt.Println("interrupts) shifts the whole distribution instead.")
}
