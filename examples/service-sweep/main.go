// Service sweep: run the study service in-process, fan a scenario grid
// through its streaming /v1/sweep endpoint, and watch NDJSON rows arrive
// as each cell completes — the trafficked-service view of the paper's
// evaluation. The same requests work against a standalone daemon:
//
//	go run ./cmd/earlybirdd &
//	curl -sN localhost:8080/v1/sweep -d '{"apps":["minife","miniqmc"],"alphas":[0.05,0.01]}'
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"earlybird"
)

func main() {
	// Serve on a loopback port. earlybird.Serve(ctx, addr, opts) is the
	// blocking form for a fixed address; here the example owns its port.
	srv := earlybird.NewServer(earlybird.ServeOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// A 3 apps x 2 alphas grid at the quick geometry: six cells, three
	// dataset generations (the alpha axis re-reads the engine's columnar
	// cache through cursors — the nested tensor is never built).
	sweep := map[string]any{
		"apps":       []string{"minife", "minimd", "miniqmc"},
		"geometries": []earlybird.Geometry{earlybird.QuickGeometry()},
		"alphas":     []float64{0.05, 0.01},
	}
	body, _ := json.Marshal(sweep)
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	fmt.Printf("sweep of %s cells:\n", resp.Header.Get("X-Sweep-Cells"))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row struct {
			Index   int     `json:"index"`
			App     string  `json:"app"`
			Alpha   float64 `json:"alpha"`
			Metrics struct {
				MeanMedianSec float64 `json:"mean_median_sec"`
			} `json:"metrics"`
			Recommendation  string `json:"recommendation"`
			DatasetCacheHit bool   `json:"dataset_cache_hit"`
			Err             string `json:"error,omitempty"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			log.Fatal(err)
		}
		if row.Err != "" {
			log.Fatalf("cell %d: %s", row.Index, row.Err)
		}
		fmt.Printf("  cell %d %-8s alpha=%.2f median %6.2f ms cache=%-5v -> %s\n",
			row.Index, row.App, row.Alpha, 1e3*row.Metrics.MeanMedianSec,
			row.DatasetCacheHit, row.Recommendation)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// The service's own view of the traffic.
	stats, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer stats.Body.Close()
	var snapshot struct {
		Engine struct {
			Executions  int64 `json:"dataset_executions"`
			Cached      int   `json:"cached_datasets"`
			NestedViews int64 `json:"nested_views"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d generations for 6 cells, %d cached, %d nested views built\n",
		snapshot.Engine.Executions, snapshot.Engine.Cached, snapshot.Engine.NestedViews)

	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
}
