// Command repro regenerates every table and figure of the paper's
// evaluation in one run, rendering paper-vs-measured values — the source
// of EXPERIMENTS.md.
//
// Examples:
//
//	repro                       # full paper geometry (10x8x200x48)
//	repro -quick                # reduced geometry for a fast look
//	repro -exp table1           # a single experiment
//	repro -figdir out/          # also dump figure CSVs for plotting
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"earlybird/internal/cliopts"
	"earlybird/internal/cluster"
	"earlybird/internal/engine"
	"earlybird/internal/experiments"
	"earlybird/internal/stats"
	"earlybird/internal/stats/normality"
)

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// runMain parses flags, builds the suite and renders the experiment.
func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "reduced geometry (3x4x60x48) for a fast run; shorthand for -geometry quick")
		geometry = cliopts.Geometry(fs)
		policy   = cliopts.DLB(fs)
		exp      = fs.String("exp", "all", "experiment: all | E1 | E2 | table1 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | metrics | overlap | strategies | dlb | ablation | distsweep | campaign")
		figdir   = fs.String("figdir", "", "directory to write figure CSV data into")
		seed     = fs.Uint64("seed", 1, "master seed")
		workers  = fs.Int("workers", 0, "max concurrently executing studies (0 = one per CPU)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *quick && geometry.IsSet {
		return fmt.Errorf("-quick and -geometry both size the run; use one")
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if geometry.IsSet {
		cfg.Cluster = geometry.Config
	}
	cfg.Cluster.Seed = *seed
	// The base rebalancing policy every suite dataset is generated under.
	// E15 crosses all policies regardless, from this policy's baseline.
	cfg.DLB = policy.Spec
	eng := engine.New(*workers)
	suite := experiments.NewSuiteOn(cfg, eng)
	return run(suite, *exp, *figdir, stdout)
}

// runCampaign demonstrates the campaign engine: the three paper apps at
// the configured and quick geometries — plus one deliberate duplicate of
// every spec — fanned out concurrently, results streamed as they
// complete, duplicates served from the dataset cache.
func runCampaign(s *experiments.Suite, w io.Writer) error {
	geoms := []cluster.Config{s.Config().Cluster, experiments.Quick().Cluster}
	geoms[1].Seed = geoms[0].Seed
	var specs []engine.Spec
	for _, app := range experiments.AppNames {
		for _, g := range geoms {
			specs = append(specs, engine.Spec{App: app, Geometry: g})
		}
	}
	specs = append(specs, specs...) // duplicates: must not re-execute

	eng := s.Engine()
	_, err := eng.Run(engine.Campaign{
		Specs: specs,
		Collect: func(r engine.Result) {
			if r.Err != nil {
				fmt.Fprintf(w, "spec %2d %-8s FAILED: %v\n", r.Index, r.Spec.App, r.Err)
				return
			}
			g := r.Spec.Geometry
			fmt.Fprintf(w, "spec %2d %-8s %dx%dx%dx%d cache=%-5v median %6.2f ms -> %s\n",
				r.Index, r.Spec.App, g.Trials, g.Ranks, g.Iterations, g.Threads,
				r.CacheHit, 1e3*r.Metrics.MeanMedianSec, r.Assessment.Recommendation)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d specs, %d executions, %d cached datasets\n",
		len(specs), eng.Executions(), eng.CachedDatasets())
	return nil
}

func run(s *experiments.Suite, exp, figdir string, w io.Writer) error {
	switch exp {
	case "all":
		s.WriteReport(w)
	case "E1":
		for _, app := range experiments.AppNames {
			res := s.E1AppLevelNormality()[app]
			for _, t := range normality.Tests {
				fmt.Fprintf(w, "%s/%s: stat %.4f p %.3g reject=%v\n", app, t, res[t].Statistic, res[t].PValue, res[t].RejectNormal)
			}
		}
	case "E2":
		for _, app := range experiments.AppNames {
			sum := s.E2AppIterationNormality()[app]
			for _, t := range normality.Tests {
				fmt.Fprintf(w, "%s/%s: %d/%d iterations pass\n", app, t, sum.Passed[t], sum.Total)
			}
		}
	case "table1":
		for _, row := range s.E3Table1() {
			fmt.Fprintln(w, row)
		}
	case "fig3":
		for _, app := range experiments.AppNames {
			h := s.E4Fig3Histograms()[app]
			fmt.Fprintf(w, "%s: peak %.2f ms over %d samples\n", app, 1e3*h.Peak(), h.Total)
		}
	case "fig4":
		fmt.Fprint(w, s.E5Fig4MiniFEPercentiles().CSV(1e-3))
	case "fig5":
		r := s.E6Fig5MiniFELaggards()
		fmt.Fprintf(w, "laggard fraction %.3f (paper 0.224)\n", r.LaggardFraction)
		fmt.Fprintln(w, "-- no laggard --")
		fmt.Fprint(w, r.NoLaggard.Render(30, 1e-3, "ms"))
		fmt.Fprintln(w, "-- with laggard --")
		fmt.Fprint(w, r.WithLaggard.Render(30, 1e-3, "ms"))
	case "fig6":
		r := s.E7Fig6MiniMDPercentiles()
		fmt.Fprintf(w, "phase1 IQR mean/max %.2f/%.2f ms, phase2 %.2f/%.2f ms\n",
			1e3*r.Phase1IQRMean, 1e3*r.Phase1IQRMax, 1e3*r.Phase2IQRMean, 1e3*r.Phase2IQRMax)
		fmt.Fprint(w, r.Series.CSV(1e-3))
	case "fig7":
		r := s.E8Fig7MiniMDLaggards()
		fmt.Fprintf(w, "phase-2 laggard fraction %.3f (paper 0.048)\n", r.LaggardFraction)
		fmt.Fprintln(w, "-- phase 1 --")
		fmt.Fprint(w, r.Phase1.Render(30, 1e-3, "ms"))
		fmt.Fprintln(w, "-- no laggard --")
		fmt.Fprint(w, r.NoLaggard.Render(30, 1e-3, "ms"))
		fmt.Fprintln(w, "-- with laggard --")
		fmt.Fprint(w, r.WithLaggard.Render(30, 1e-3, "ms"))
	case "fig8":
		fmt.Fprint(w, s.E9Fig8MiniQMCPercentiles().CSV(1e-3))
	case "fig9":
		fmt.Fprint(w, s.E10Fig9MiniQMCHistogram().Render(40, 1e-3, "ms"))
	case "metrics":
		for _, app := range experiments.AppNames {
			fmt.Fprintln(w, s.E11Metrics()[app])
		}
	case "overlap":
		for _, app := range experiments.AppNames {
			fmt.Fprintf(w, "%s:\n", app)
			for _, r := range s.E12Overlap()[app] {
				fmt.Fprintf(w, "  %s\n", r)
			}
		}
	case "strategies", "E14", "frontier":
		s.WriteStrategyFrontier(w)
	case "dlb", "E15":
		s.WriteDLBReport(w)
	case "ablation":
		s.WriteAblationReport(w)
	case "distsweep":
		s.WriteDistSweepReport(w, experiments.DefaultDistSweep())
	case "campaign":
		return runCampaign(s, w)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}

	if figdir != "" {
		return dumpFigures(s, figdir, w)
	}
	return nil
}

// dumpFigures writes plotting-ready CSVs for every figure.
func dumpFigures(s *experiments.Suite, dir string, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	for _, app := range experiments.AppNames {
		h := s.E4Fig3Histograms()[app]
		if err := write(fmt.Sprintf("fig3_%s.csv", app), h.CSV(1e-3)); err != nil {
			return err
		}
	}
	if err := write("fig4_minife_percentiles.csv", s.E5Fig4MiniFEPercentiles().CSV(1e-3)); err != nil {
		return err
	}
	f5 := s.E6Fig5MiniFELaggards()
	if err := writeHist(write, "fig5a_no_laggard.csv", f5.NoLaggard); err != nil {
		return err
	}
	if err := writeHist(write, "fig5b_laggard.csv", f5.WithLaggard); err != nil {
		return err
	}
	if err := write("fig6_minimd_percentiles.csv", s.E7Fig6MiniMDPercentiles().Series.CSV(1e-3)); err != nil {
		return err
	}
	f7 := s.E8Fig7MiniMDLaggards()
	if err := writeHist(write, "fig7a_phase1.csv", f7.Phase1); err != nil {
		return err
	}
	if err := writeHist(write, "fig7b_no_laggard.csv", f7.NoLaggard); err != nil {
		return err
	}
	if err := writeHist(write, "fig7c_laggard.csv", f7.WithLaggard); err != nil {
		return err
	}
	if err := write("fig8_miniqmc_percentiles.csv", s.E9Fig8MiniQMCPercentiles().CSV(1e-3)); err != nil {
		return err
	}
	if err := writeHist(write, "fig9_miniqmc_process.csv", s.E10Fig9MiniQMCHistogram()); err != nil {
		return err
	}
	fmt.Fprintf(w, "figure data written to %s\n", dir)
	return nil
}

func writeHist(write func(string, string) error, name string, h *stats.Histogram) error {
	if h == nil {
		return nil
	}
	return write(name, h.CSV(1e-3))
}
