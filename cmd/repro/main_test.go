package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := runMain(args, &out, &errOut)
	return out.String(), err
}

func TestRunMainErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":       {"-nope"},
		"unexpected args":    {"extra"},
		"unknown experiment": {"-quick", "-exp", "nope"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunMainTable1Quick(t *testing.T) {
	out, err := runCmd(t, "-quick", "-exp", "table1")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		if !strings.Contains(out, app) {
			t.Errorf("table1 output missing %s:\n%s", app, out)
		}
	}
}

func TestRunMainFigdir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	out, err := runCmd(t, "-quick", "-exp", "fig4", "-figdir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "figure data written") {
		t.Errorf("missing figdir confirmation:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Errorf("figdir holds %d files, want the full figure set", len(entries))
	}
}
