package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := runMain(args, &out, &errOut)
	return out.String(), err
}

func TestRunMainErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":       {"-nope"},
		"unexpected args":    {"extra"},
		"unknown experiment": {"-quick", "-exp", "nope"},
		"bad geometry":       {"-geometry", "3x4"},
		"bad dlb":            {"-dlb", "nope"},
		"quick vs geometry":  {"-quick", "-geometry", "quick"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunMainTable1Quick(t *testing.T) {
	out, err := runCmd(t, "-quick", "-exp", "table1")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		if !strings.Contains(out, app) {
			t.Errorf("table1 output missing %s:\n%s", app, out)
		}
	}
}

// TestRunMainGeometryDLB sizes a run with the shared -geometry syntax
// and rebases every suite dataset on a rebalancing policy via -dlb.
func TestRunMainGeometryDLB(t *testing.T) {
	static, err := runCmd(t, "-geometry", "1x4x12x48", "-exp", "metrics")
	if err != nil {
		t.Fatal(err)
	}
	lewi, err := runCmd(t, "-geometry", "1x4x12x48", "-dlb", "lewi", "-exp", "metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		if !strings.Contains(static, app) {
			t.Errorf("metrics output missing %s:\n%s", app, static)
		}
	}
	// minife rebalances at this shape, so the suite-wide policy must
	// change the reported metrics.
	if static == lewi {
		t.Error("-dlb lewi reproduced the static metrics verbatim")
	}
}

func TestRunMainFigdir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	out, err := runCmd(t, "-quick", "-exp", "fig4", "-figdir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "figure data written") {
		t.Errorf("missing figdir confirmation:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Errorf("figdir holds %d files, want the full figure set", len(entries))
	}
}
