// Command earlybird assesses the feasibility of early-bird message
// delivery for an application's thread-arrival behaviour — the question
// the paper's title poses (Figures 1-2, Section 5).
//
// It evaluates three delivery strategies over the arrival data (bulk
// baseline, fine-grained per-partition early-bird, and timeout-binned
// aggregation) on an alpha-beta fabric model, and emits the paper-style
// recommendation.
//
// Examples:
//
//	earlybird -app miniqmc
//	earlybird -in fe.json -part-bytes 262144 -bin-timeout-ms 0.5
//	earlybird -app minife -remote http://localhost:8080   # ask a running earlybirdd
//	earlybird -app miniqmc -strategies                    # full strategy-grid optimizer
//
// With -remote the assessment is requested from a running earlybirdd
// study service (POST /v1/feasibility) instead of computed in-process,
// so repeated invocations across machines share the service's coalesced
// executions and caches.
//
// With -strategies the three-strategy assessment is replaced by the
// strategy lab's optimizer sweep: the full grid (bulk, fine-grained,
// binned timeouts, EWMA-predicted binning, IQR-switching hybrid, tuned
// laggard-aware) evaluated on the cursor path, rendered as a frontier
// table. Combined with -remote it asks POST /v1/strategies instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/serve"
	"earlybird/internal/trace"
)

func main() {
	var (
		app        = flag.String("app", "", "built-in application (minife|minimd|miniqmc)")
		in         = flag.String("in", "", "dataset JSON (alternative to -app)")
		partBytes  = flag.Int("part-bytes", 1<<20, "bytes per partition (one partition per thread)")
		timeoutMs  = flag.Float64("bin-timeout-ms", 1.0, "binned-strategy flush timeout (ms)")
		trials     = flag.Int("trials", 3, "trials when running a built-in app")
		iters      = flag.Int("iters", 60, "iterations when running a built-in app")
		latencyUs  = flag.Float64("latency-us", 1.0, "fabric latency (us)")
		bwGBs      = flag.Float64("bandwidth-gbs", 12.5, "fabric bandwidth (GB/s)")
		remote     = flag.String("remote", "", "base URL of a running earlybirdd (assess via the service instead of in-process)")
		strategies = flag.Bool("strategies", false, "sweep the full delivery-strategy grid (optimizer frontier) instead of the three-strategy assessment")
	)
	flag.Parse()

	var err error
	if *remote != "" {
		switch {
		case *in != "":
			err = fmt.Errorf("-remote cannot assess a local dataset (-in); datasets do not travel over the wire")
		case *app == "":
			err = fmt.Errorf("-remote requires -app")
		case *strategies:
			err = runRemoteStrategies(*remote, *app, *partBytes, *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9)
		default:
			err = runRemote(*remote, *app, *partBytes, *timeoutMs*1e-3, *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9)
		}
	} else {
		err = run(*app, *in, *partBytes, *timeoutMs*1e-3, *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9, *strategies)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "earlybird:", err)
		os.Exit(1)
	}
}

// printSweep renders one strategy-lab sweep as a frontier table.
func printSweep(app string, sw partcomm.Sweep) {
	fmt.Printf("%s: potential overlap %.3f ms/thread\n", app, 1e3*sw.PotentialOverlapSec)
	for _, r := range sw.Results {
		fmt.Printf("  %-24s finish %8.3f ms  overlap %8.3f ms  speedup %5.3fx  capture %5.1f%%\n",
			r.Strategy, 1e3*r.MeanFinishSec, 1e3*r.MeanOverlapSec, r.SpeedupVsBulk, 100*r.OverlapCapture)
	}
	fmt.Printf("  -> best %s: finish %.3f ms, captures %.1f%% of potential\n",
		sw.Best, 1e3*sw.BestFinishSec, 100*sw.BestCapture)
}

// runRemoteStrategies asks a running study service for the optimizer
// sweep (POST /v1/strategies, single cell, JSON mode).
func runRemoteStrategies(base, app string, partBytes, trials, iters int, latencySec, bwBps float64) error {
	req := serve.StrategiesRequest{
		Apps:              []string{app},
		Geometries:        []cluster.Config{{Trials: trials, Ranks: 8, Iterations: iters, Threads: 48, Seed: 1}},
		BytesPerPartition: partBytes,
		Fabric:            &network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/strategies", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sr serve.StrategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	for _, row := range sr.Rows {
		if row.Err != "" {
			return fmt.Errorf("service: %s", row.Err)
		}
		fmt.Printf("served by %s (%s)\n", base, row.Source)
		printSweep(row.App, row.Sweep)
	}
	return nil
}

// runRemote asks a running study service for the assessment.
func runRemote(base, app string, partBytes int, timeoutSec float64, trials, iters int, latencySec, bwBps float64) error {
	spec := serve.StudySpec{
		App:               app,
		Geometry:          &cluster.Config{Trials: trials, Ranks: 8, Iterations: iters, Threads: 48, Seed: 1},
		BytesPerPartition: partBytes,
		BinTimeoutSec:     timeoutSec,
		Fabric:            &network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/feasibility", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var fr serve.FeasibilityResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return err
	}
	fmt.Printf("served by %s (%s)\n", base, fr.Source)
	fmt.Print(fr.Assessment)
	return nil
}

func run(app, in string, partBytes int, timeoutSec float64, trials, iters int, latencySec, bwBps float64, strategies bool) error {
	var (
		study *core.Study
		err   error
	)
	switch {
	case in != "":
		f, err2 := os.Open(in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		var ds *trace.Dataset
		if ds, err = trace.ReadJSON(f); err != nil {
			return err
		}
		study, err = core.FromDataset(ds)
	case app != "":
		study, err = core.NewStudy(core.Options{
			App:      app,
			Geometry: cluster.Config{Trials: trials, Ranks: 8, Iterations: iters, Threads: 48, Seed: 1},
		})
	default:
		return fmt.Errorf("one of -app or -in is required")
	}
	if err != nil {
		return err
	}

	fabric := network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6}
	if err := fabric.Validate(); err != nil {
		return err
	}
	if strategies {
		printSweep(study.App(), study.StrategySweep(partBytes, fabric, nil))
		return nil
	}
	a := study.Feasibility(partBytes, fabric, timeoutSec)
	fmt.Print(a)
	return nil
}
