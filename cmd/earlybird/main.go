// Command earlybird assesses the feasibility of early-bird message
// delivery for an application's thread-arrival behaviour — the question
// the paper's title poses (Figures 1-2, Section 5).
//
// It evaluates three delivery strategies over the arrival data (bulk
// baseline, fine-grained per-partition early-bird, and timeout-binned
// aggregation) on an alpha-beta fabric model, and emits the paper-style
// recommendation.
//
// Examples:
//
//	earlybird -app miniqmc
//	earlybird -app minife -geometry 2x8x100x48 -dlb lewi  # rebalanced runtime, explicit shape
//	earlybird -in fe.json -part-bytes 262144 -bin-timeout-ms 0.5
//	earlybird -app minife -remote http://localhost:8080   # ask a running earlybirdd
//	earlybird -app miniqmc -strategies                    # full strategy-grid optimizer
//	earlybird -app minife -fleet http://h1:8080,http://h2:8080   # federate across workers
//	earlybird -scenario examples/scenarios/quick.yaml            # declarative campaign
//
// With -remote the assessment is requested from a running earlybirdd
// study service (POST /v1/feasibility) instead of computed in-process,
// so repeated invocations across machines share the service's coalesced
// executions and caches.
//
// With -strategies the three-strategy assessment is replaced by the
// strategy lab's optimizer sweep: the full grid (bulk, fine-grained,
// binned timeouts, EWMA-predicted binning, IQR-switching hybrid, tuned
// laggard-aware) evaluated on the cursor path, rendered as a frontier
// table. Combined with -remote it asks POST /v1/strategies instead.
//
// With -fleet (a comma-separated list of earlybirdd worker URLs) the
// study is federated: trial shards execute on the workers over
// /v1/shard and merge client-side into results provably equal to
// single-node execution. -fleet -strategies dispatches strategy cells
// whole to their rendezvous workers instead.
//
// With -scenario the study flags are replaced by a declarative scenario
// file (internal/scenario): sources x geometries x noise x dlb x
// fabrics x timeouts compile to an engine campaign whose coverage of
// the declared cross-product is verified before anything runs.
// -scenario-check stops after printing the verified plan; -remote sends
// the scenario (traces inlined) to POST /v1/scenario; -fleet dispatches
// wire-expressible cells whole to their rendezvous workers and runs the
// rest locally, bit-identical either way.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sync"

	"earlybird/internal/cliopts"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/fleet"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/scenario"
	"earlybird/internal/serve"
	"earlybird/internal/trace"
)

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "earlybird:", err)
		os.Exit(1)
	}
}

// runMain parses flags and routes to the local, remote or fleet path.
func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("earlybird", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app        = cliopts.App(fs)
		geometry   = cliopts.Geometry(fs)
		policy     = cliopts.DLB(fs)
		strategies = cliopts.Strategies(fs)
		in         = fs.String("in", "", "dataset JSON (alternative to -app)")
		partBytes  = fs.Int("part-bytes", 1<<20, "bytes per partition (one partition per thread)")
		timeoutMs  = fs.Float64("bin-timeout-ms", 1.0, "binned-strategy flush timeout (ms)")
		trials     = fs.Int("trials", 3, "trials when running a built-in app")
		iters      = fs.Int("iters", 60, "iterations when running a built-in app")
		latencyUs  = fs.Float64("latency-us", 1.0, "fabric latency (us)")
		bwGBs      = fs.Float64("bandwidth-gbs", 12.5, "fabric bandwidth (GB/s)")
		scenFile   = fs.String("scenario", "", "scenario file (YAML or JSON): compile the declared cross-product into a campaign, verify coverage, and run every cell")
		scenCheck  = fs.Bool("scenario-check", false, "with -scenario: compile and verify only; print the campaign plan without running it")
		remote     = fs.String("remote", "", "base URL of a running earlybirdd (assess via the service instead of in-process)")
		fleetCSV   = fs.String("fleet", "", "comma-separated earlybirdd worker URLs: federate the study across them (shards merged client-side)")
		storeDir   = fs.String("store-dir", "", "durable result store directory for -fleet: merged cells persist there and repeat runs are served from disk")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *scenCheck && *scenFile == "" {
		return fmt.Errorf("-scenario-check requires -scenario")
	}
	if *scenFile != "" {
		// The scenario file declares every axis a study flag would set;
		// accepting both would silently drop one side.
		for _, name := range []string{"app", "in", "strategies", "geometry", "dlb", "trials", "iters",
			"bin-timeout-ms", "part-bytes", "latency-us", "bandwidth-gbs"} {
			if set[name] {
				return fmt.Errorf("-%s conflicts with -scenario: the scenario file declares the campaign", name)
			}
		}
		if *storeDir != "" {
			return fmt.Errorf("-store-dir does not apply to -scenario: scenario cells dispatch over /v1/study, whose results live in the workers' caches")
		}
		switch {
		case *remote != "" && *fleetCSV != "":
			return fmt.Errorf("-remote and -fleet are mutually exclusive: a fleet is a set of remotes")
		case *fleetCSV != "":
			return runFleetScenario(stdout, *fleetCSV, *scenFile, *scenCheck)
		case *remote != "":
			return runRemoteScenario(stdout, *remote, *scenFile, *scenCheck)
		}
		return runScenario(stdout, *scenFile, *scenCheck)
	}

	// The geometry the study runs at: -geometry (shared syntax), or the
	// legacy -trials/-iters sizing flags around the CLI's 8x48 shape.
	// Combining the two would silently drop one, so refuse.
	geom := cliGeometry(*trials, *iters)
	if geometry.IsSet {
		for _, name := range []string{"trials", "iters"} {
			if set[name] {
				return fmt.Errorf("-geometry and -%s both size the study; use one", name)
			}
		}
		geom = geometry.Config
	}
	if policy.IsSet && *in != "" {
		return fmt.Errorf("-dlb shapes dataset generation; a pre-collected dataset (-in) is already shaped")
	}

	if *storeDir != "" && *fleetCSV == "" {
		return fmt.Errorf("-store-dir only applies to federated execution; add -fleet")
	}

	opts := cli{
		app:        app.Name,
		in:         *in,
		partBytes:  *partBytes,
		timeoutSec: *timeoutMs * 1e-3,
		timeouts:   binTimeouts(set, *timeoutMs),
		geom:       geom,
		fabric:     network.Fabric{LatencySec: *latencyUs * 1e-6, BandwidthBytesPerSec: *bwGBs * 1e9, OverheadSec: 0.3e-6},
		strategies: *strategies,
		dlb:        policy.Spec,
		dlbSet:     policy.IsSet,
		storeDir:   *storeDir,
	}

	switch {
	case *remote != "" && *fleetCSV != "":
		return fmt.Errorf("-remote and -fleet are mutually exclusive: a fleet is a set of remotes")
	case *fleetCSV != "":
		switch {
		case *in != "":
			return fmt.Errorf("-fleet cannot assess a local dataset (-in); datasets do not travel over the wire")
		case opts.app == "":
			return fmt.Errorf("-fleet requires -app")
		}
		if !*strategies {
			// The federated sweep path reports streaming metrics and the
			// classifier verdict — it has no fabric or partition inputs,
			// so explicitly-set feasibility flags would be silently
			// dropped. Refuse instead of misleading.
			for _, name := range []string{"bin-timeout-ms", "part-bytes", "latency-us", "bandwidth-gbs"} {
				if set[name] {
					return fmt.Errorf("-%s has no effect on the federated sweep path; combine it with -fleet -strategies, or use -remote for the fabric-based feasibility assessment", name)
				}
			}
		}
		return runFleet(stdout, *fleetCSV, opts)
	case *remote != "":
		switch {
		case *in != "":
			return fmt.Errorf("-remote cannot assess a local dataset (-in); datasets do not travel over the wire")
		case opts.app == "":
			return fmt.Errorf("-remote requires -app")
		case *strategies:
			return runRemoteStrategies(stdout, *remote, opts)
		}
		return runRemote(stdout, *remote, opts)
	}
	return run(stdout, opts)
}

// cli is the parsed flag state every execution path consumes.
type cli struct {
	app        string
	in         string
	partBytes  int
	timeoutSec float64   // -bin-timeout-ms for the three-strategy assessment
	timeouts   []float64 // explicit strategy-grid timeout axis, nil = standard grid
	geom       cluster.Config
	fabric     network.Fabric
	strategies bool
	dlb        dlb.Spec
	dlbSet     bool
	storeDir   string // -store-dir: durable result store for -fleet
}

// dlbPointer renders the -dlb flag for request fields that take a bare
// *dlb.Spec (/v1/strategies, shard dispatch): nil when the flag was
// absent, so the server's default policy (if any) still applies and old
// wire bytes stay byte-identical.
func (o cli) dlbPointer() *dlb.Spec {
	if !o.dlbSet {
		return nil
	}
	d := o.dlb
	return &d
}

// policyEnvelope renders the -dlb flag as the /v1 policy envelope; nil
// when the flag was absent.
func (o cli) policyEnvelope() *serve.PolicySpec {
	d := o.dlbPointer()
	if d == nil {
		return nil
	}
	return &serve.PolicySpec{DLB: d}
}

// cliGeometry is the geometry the CLI's -trials/-iters flags describe.
func cliGeometry(trials, iters int) cluster.Config {
	return cluster.Config{Trials: trials, Ranks: 8, Iterations: iters, Threads: 48, Seed: 1}
}

// binTimeouts maps an explicitly-set -bin-timeout-ms onto the strategy
// grid's timeout axis; left at its default, nil selects the standard
// optimizer grid.
func binTimeouts(set map[string]bool, timeoutMs float64) []float64 {
	if set["bin-timeout-ms"] {
		return []float64{timeoutMs * 1e-3}
	}
	return nil
}

// printSweep renders one strategy-lab sweep as a frontier table.
func printSweep(w io.Writer, app string, sw partcomm.Sweep) {
	fmt.Fprintf(w, "%s: potential overlap %.3f ms/thread\n", app, 1e3*sw.PotentialOverlapSec)
	for _, r := range sw.Results {
		fmt.Fprintf(w, "  %-24s finish %8.3f ms  overlap %8.3f ms  speedup %5.3fx  capture %5.1f%%\n",
			r.Strategy, 1e3*r.MeanFinishSec, 1e3*r.MeanOverlapSec, r.SpeedupVsBulk, 100*r.OverlapCapture)
	}
	fmt.Fprintf(w, "  -> best %s: finish %.3f ms, captures %.1f%% of potential\n",
		sw.Best, 1e3*sw.BestFinishSec, 100*sw.BestCapture)
}

// runFleet federates the study (or the strategy sweep) across a fleet of
// workers and renders the merged result.
func runFleet(w io.Writer, peersCSV string, o cli) error {
	fopts := fleet.Options{Peers: fleet.SplitPeers(peersCSV)}
	if o.storeDir != "" {
		st, err := fleet.OpenStore(o.storeDir, nil)
		if err != nil {
			return err
		}
		fopts.Store = st
	}
	fl, err := fleet.New(fopts)
	if err != nil {
		return err
	}
	ctx := context.Background()
	// With a warm store the sweep can answer from disk even when every
	// worker is down, so an empty probe is only fatal without one.
	if healthy := fl.Probe(ctx); healthy == 0 && o.storeDir == "" {
		return fmt.Errorf("no healthy workers among %v", fl.Workers())
	}

	if o.strategies {
		fabric := o.fabric
		req := serve.StrategiesRequest{
			Apps:              []string{o.app},
			Geometries:        []cluster.Config{o.geom},
			BytesPerPartition: o.partBytes,
			TimeoutsSec:       o.timeouts,
			Fabric:            &fabric,
			DLB:               o.dlbPointer(),
		}
		var rows []serve.StrategyRow
		if err := fl.Strategies(ctx, req, func(r serve.StrategyRow) { rows = append(rows, r) }); err != nil {
			return err
		}
		// Strategy cells dispatch whole: each row ran on exactly one
		// rendezvous worker of the fleet.
		fmt.Fprintf(w, "federated strategy grid over fleet of %d healthy workers\n", fl.Healthy())
		for _, row := range rows {
			if row.Err != "" {
				return fmt.Errorf("fleet: %s", row.Err)
			}
			printSweep(w, row.App, row.Sweep)
		}
		return nil
	}

	req := serve.SweepRequest{Apps: []string{o.app}, Geometries: []cluster.Config{o.geom}}
	if o.dlbSet {
		req.DLBs = []dlb.Spec{o.dlb}
	}
	var rows []serve.SweepRow
	if err := fl.Sweep(ctx, req, func(r serve.SweepRow) { rows = append(rows, r) }); err != nil {
		return err
	}
	for _, row := range rows {
		if row.Err != "" {
			return fmt.Errorf("fleet: %s", row.Err)
		}
		workers := slices.Compact(slices.Sorted(slices.Values(row.ShardWorkers)))
		if row.StoreHit {
			fmt.Fprintf(w, "served %s from the durable result store (no shards dispatched)\n", row.App)
		} else {
			fmt.Fprintf(w, "federated %s as %d trial shards over %d workers\n", row.App, row.Shards, len(workers))
		}
		fmt.Fprintln(w, row.Metrics)
		fmt.Fprintln(w, row.Table1)
		fmt.Fprintf(w, "recommendation: %s\n", row.Recommendation)
	}
	return nil
}

// runRemoteStrategies asks a running study service for the optimizer
// sweep (POST /v1/strategies, single cell, JSON mode).
func runRemoteStrategies(w io.Writer, base string, o cli) error {
	fabric := o.fabric
	req := serve.StrategiesRequest{
		Apps:              []string{o.app},
		Geometries:        []cluster.Config{o.geom},
		BytesPerPartition: o.partBytes,
		TimeoutsSec:       o.timeouts,
		Fabric:            &fabric,
		DLB:               o.dlbPointer(),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/strategies", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sr serve.StrategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	for _, row := range sr.Rows {
		if row.Err != "" {
			return fmt.Errorf("service: %s", row.Err)
		}
		fmt.Fprintf(w, "served by %s (%s)\n", base, row.Source)
		printSweep(w, row.App, row.Sweep)
	}
	return nil
}

// runRemote asks a running study service for the assessment.
func runRemote(w io.Writer, base string, o cli) error {
	geom, fabric := o.geom, o.fabric
	spec := serve.StudySpec{
		App:               o.app,
		Geometry:          &geom,
		BytesPerPartition: o.partBytes,
		BinTimeoutSec:     o.timeoutSec,
		Fabric:            &fabric,
		Policy:            o.policyEnvelope(),
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/feasibility", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var fr serve.FeasibilityResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return err
	}
	fmt.Fprintf(w, "served by %s (%s)\n", base, fr.Source)
	fmt.Fprint(w, fr.Assessment)
	return nil
}

// compileScenarioFile reads a scenario, compiles it (trace paths
// resolved relative to the file) and proves coverage, printing the
// campaign plan — the shared preamble of every -scenario path.
func compileScenarioFile(w io.Writer, path string) (*scenario.Compiled, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	c, err := spec.Compile(scenario.CompileOptions{BaseDir: filepath.Dir(path)})
	if err != nil {
		return nil, err
	}
	cov, err := c.Verify()
	if err != nil {
		return nil, err
	}
	fmt.Fprint(w, c.Plan())
	fmt.Fprintf(w, "coverage verified: %d cells cover the declared cross-product exactly (%d unique studies)\n",
		cov.Cells, cov.UniqueSpecs)
	return c, nil
}

// assessmentLine condenses one cell's verdict to a result line.
func assessmentLine(a core.Assessment) string {
	return fmt.Sprintf("%-28s  laggards %5.1f%%  iqr/median %6.3f  overlap %8.3f ms",
		a.Recommendation, 100*a.LaggardFraction, a.IQRToMedian, 1e3*a.PotentialOverlapSec)
}

// runScenario compiles, verifies and runs a scenario in-process: the
// compiled cells execute as one engine campaign (identical cells share
// one execution through the campaign's dedup).
func runScenario(w io.Writer, path string, check bool) error {
	c, err := compileScenarioFile(w, path)
	if err != nil {
		return err
	}
	if check {
		return nil
	}
	eng := engine.New(0)
	results, err := eng.Run(engine.Campaign{Specs: c.EngineSpecs()})
	if err != nil {
		return err
	}
	for i, r := range results {
		fmt.Fprintf(w, "%3d  %s\n", c.Cells[i].Index, assessmentLine(r.Assessment))
	}
	return nil
}

// runFleetScenario federates a scenario: wire-expressible cells (bare
// app specs — no noise wrapper, no dataset) dispatch whole to their
// rendezvous workers over /v1/study; the rest run on a local engine.
// Both paths execute the same resolved specs deterministically, so the
// merged output is bit-identical to running everything locally.
func runFleetScenario(w io.Writer, peersCSV, path string, check bool) error {
	c, err := compileScenarioFile(w, path)
	if err != nil {
		return err
	}
	if check {
		return nil
	}
	fl, err := fleet.New(fleet.Options{Peers: fleet.SplitPeers(peersCSV)})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if healthy := fl.Probe(ctx); healthy == 0 {
		return fmt.Errorf("no healthy workers among %v", fl.Workers())
	}

	eng := engine.New(0)
	type outcome struct {
		assessment core.Assessment
		federated  bool
		err        error
	}
	outcomes := make([]outcome, len(c.Cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, eng.Workers())
	for i := range c.Cells {
		// Wire-expressibility reads the compiled (pre-resolution) spec:
		// Resolve fills Model in for bare apps too.
		wire := c.Cells[i].Spec.Model == nil && c.Cells[i].Spec.Dataset == nil && c.Cells[i].Spec.App != ""
		resolved, err := c.Cells[i].Spec.Resolve()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, resolved engine.Spec, wire bool) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if wire {
				if resp, ok := fl.DispatchStudy(ctx, resolved.Key().Hash(), serve.WireStudySpec(resolved)); ok {
					outcomes[i] = outcome{assessment: resp.Assessment, federated: true}
					return
				}
			}
			r, err := eng.RunSpec(resolved)
			outcomes[i] = outcome{assessment: r.Assessment, err: err}
		}(i, resolved, wire)
	}
	wg.Wait()

	federated := 0
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("cell %d: %w", i, o.err)
		}
		where := "local"
		if o.federated {
			where = "fleet"
			federated++
		}
		fmt.Fprintf(w, "%3d  %-5s  %s\n", c.Cells[i].Index, where, assessmentLine(o.assessment))
	}
	fmt.Fprintf(w, "federated %d/%d cells over %d healthy workers\n", federated, len(c.Cells), fl.Healthy())
	return nil
}

// runRemoteScenario sends the scenario to a running earlybirdd
// (POST /v1/scenario), with path-backed trace sources inlined first —
// server-side file paths do not travel over the wire. Compilation,
// verification and coalesced execution all happen service-side.
func runRemoteScenario(w io.Writer, base, path string, check bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		return err
	}
	doc, err := spec.Wire(filepath.Dir(path))
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.ScenarioRequest{Scenario: string(doc), Check: check})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/scenario", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sr serve.ScenarioResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %s compiled server-side by %s: %d cells (%d unique studies)\n",
		sr.Name, base, sr.Cells, sr.UniqueSpecs)
	if check {
		fmt.Fprint(w, sr.Plan)
		return nil
	}
	for _, row := range sr.Rows {
		if row.Err != "" {
			return fmt.Errorf("cell %d: %s", row.Index, row.Err)
		}
		where := string(row.Source)
		if row.Federated {
			where = "fleet"
		}
		fmt.Fprintf(w, "%3d  %-12s  %s\n", row.Index, where, assessmentLine(row.Assessment))
	}
	if sr.Failed > 0 {
		return fmt.Errorf("%d cells failed", sr.Failed)
	}
	return nil
}

func run(w io.Writer, o cli) error {
	var (
		study *core.Study
		err   error
	)
	switch {
	case o.in != "":
		f, err2 := os.Open(o.in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		var ds *trace.Dataset
		if ds, err = trace.ReadJSON(f); err != nil {
			return err
		}
		study, err = core.FromDataset(ds)
	case o.app != "":
		study, err = core.NewStudy(core.Options{
			App:      o.app,
			Geometry: o.geom,
			Policy:   core.PolicySpec{DLB: o.dlb},
		})
	default:
		return fmt.Errorf("one of -app or -in is required")
	}
	if err != nil {
		return err
	}

	if err := o.fabric.Validate(); err != nil {
		return err
	}
	if o.strategies {
		printSweep(w, study.App(), study.StrategySweep(o.partBytes, o.fabric, nil))
		return nil
	}
	a := study.Feasibility(o.partBytes, o.fabric, o.timeoutSec)
	fmt.Fprint(w, a)
	return nil
}
