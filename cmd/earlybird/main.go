// Command earlybird assesses the feasibility of early-bird message
// delivery for an application's thread-arrival behaviour — the question
// the paper's title poses (Figures 1-2, Section 5).
//
// It evaluates three delivery strategies over the arrival data (bulk
// baseline, fine-grained per-partition early-bird, and timeout-binned
// aggregation) on an alpha-beta fabric model, and emits the paper-style
// recommendation.
//
// Examples:
//
//	earlybird -app miniqmc
//	earlybird -in fe.json -part-bytes 262144 -bin-timeout-ms 0.5
//	earlybird -app minife -remote http://localhost:8080   # ask a running earlybirdd
//	earlybird -app miniqmc -strategies                    # full strategy-grid optimizer
//	earlybird -app minife -fleet http://h1:8080,http://h2:8080   # federate across workers
//
// With -remote the assessment is requested from a running earlybirdd
// study service (POST /v1/feasibility) instead of computed in-process,
// so repeated invocations across machines share the service's coalesced
// executions and caches.
//
// With -strategies the three-strategy assessment is replaced by the
// strategy lab's optimizer sweep: the full grid (bulk, fine-grained,
// binned timeouts, EWMA-predicted binning, IQR-switching hybrid, tuned
// laggard-aware) evaluated on the cursor path, rendered as a frontier
// table. Combined with -remote it asks POST /v1/strategies instead.
//
// With -fleet (a comma-separated list of earlybirdd worker URLs) the
// study is federated: trial shards execute on the workers over
// /v1/shard and merge client-side into results provably equal to
// single-node execution. -fleet -strategies dispatches strategy cells
// whole to their rendezvous workers instead.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"

	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/fleet"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/serve"
	"earlybird/internal/trace"
)

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "earlybird:", err)
		os.Exit(1)
	}
}

// runMain parses flags and routes to the local, remote or fleet path.
func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("earlybird", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app        = fs.String("app", "", "built-in application (minife|minimd|miniqmc)")
		in         = fs.String("in", "", "dataset JSON (alternative to -app)")
		partBytes  = fs.Int("part-bytes", 1<<20, "bytes per partition (one partition per thread)")
		timeoutMs  = fs.Float64("bin-timeout-ms", 1.0, "binned-strategy flush timeout (ms)")
		trials     = fs.Int("trials", 3, "trials when running a built-in app")
		iters      = fs.Int("iters", 60, "iterations when running a built-in app")
		latencyUs  = fs.Float64("latency-us", 1.0, "fabric latency (us)")
		bwGBs      = fs.Float64("bandwidth-gbs", 12.5, "fabric bandwidth (GB/s)")
		remote     = fs.String("remote", "", "base URL of a running earlybirdd (assess via the service instead of in-process)")
		fleetCSV   = fs.String("fleet", "", "comma-separated earlybirdd worker URLs: federate the study across them (shards merged client-side)")
		strategies = fs.Bool("strategies", false, "sweep the full delivery-strategy grid (optimizer frontier) instead of the three-strategy assessment")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	switch {
	case *remote != "" && *fleetCSV != "":
		return fmt.Errorf("-remote and -fleet are mutually exclusive: a fleet is a set of remotes")
	case *fleetCSV != "":
		switch {
		case *in != "":
			return fmt.Errorf("-fleet cannot assess a local dataset (-in); datasets do not travel over the wire")
		case *app == "":
			return fmt.Errorf("-fleet requires -app")
		}
		if !*strategies {
			// The federated sweep path reports streaming metrics and the
			// classifier verdict — it has no fabric or partition inputs,
			// so explicitly-set feasibility flags would be silently
			// dropped. Refuse instead of misleading.
			for _, name := range []string{"bin-timeout-ms", "part-bytes", "latency-us", "bandwidth-gbs"} {
				if set[name] {
					return fmt.Errorf("-%s has no effect on the federated sweep path; combine it with -fleet -strategies, or use -remote for the fabric-based feasibility assessment", name)
				}
			}
		}
		return runFleet(stdout, *fleetCSV, *app, *strategies, *partBytes, binTimeouts(set, *timeoutMs), *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9)
	case *remote != "":
		switch {
		case *in != "":
			return fmt.Errorf("-remote cannot assess a local dataset (-in); datasets do not travel over the wire")
		case *app == "":
			return fmt.Errorf("-remote requires -app")
		case *strategies:
			return runRemoteStrategies(stdout, *remote, *app, *partBytes, binTimeouts(set, *timeoutMs), *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9)
		}
		return runRemote(stdout, *remote, *app, *partBytes, *timeoutMs*1e-3, *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9)
	}
	return run(stdout, *app, *in, *partBytes, *timeoutMs*1e-3, *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9, *strategies)
}

// cliGeometry is the geometry the CLI's -trials/-iters flags describe.
func cliGeometry(trials, iters int) cluster.Config {
	return cluster.Config{Trials: trials, Ranks: 8, Iterations: iters, Threads: 48, Seed: 1}
}

// binTimeouts maps an explicitly-set -bin-timeout-ms onto the strategy
// grid's timeout axis; left at its default, nil selects the standard
// optimizer grid.
func binTimeouts(set map[string]bool, timeoutMs float64) []float64 {
	if set["bin-timeout-ms"] {
		return []float64{timeoutMs * 1e-3}
	}
	return nil
}

// printSweep renders one strategy-lab sweep as a frontier table.
func printSweep(w io.Writer, app string, sw partcomm.Sweep) {
	fmt.Fprintf(w, "%s: potential overlap %.3f ms/thread\n", app, 1e3*sw.PotentialOverlapSec)
	for _, r := range sw.Results {
		fmt.Fprintf(w, "  %-24s finish %8.3f ms  overlap %8.3f ms  speedup %5.3fx  capture %5.1f%%\n",
			r.Strategy, 1e3*r.MeanFinishSec, 1e3*r.MeanOverlapSec, r.SpeedupVsBulk, 100*r.OverlapCapture)
	}
	fmt.Fprintf(w, "  -> best %s: finish %.3f ms, captures %.1f%% of potential\n",
		sw.Best, 1e3*sw.BestFinishSec, 100*sw.BestCapture)
}

// runFleet federates the study (or the strategy sweep) across a fleet of
// workers and renders the merged result.
func runFleet(w io.Writer, peersCSV, app string, strategies bool, partBytes int, timeoutsSec []float64, trials, iters int, latencySec, bwBps float64) error {
	fl, err := fleet.New(fleet.Options{Peers: fleet.SplitPeers(peersCSV)})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if healthy := fl.Probe(ctx); healthy == 0 {
		return fmt.Errorf("no healthy workers among %v", fl.Workers())
	}
	geom := cliGeometry(trials, iters)

	if strategies {
		req := serve.StrategiesRequest{
			Apps:              []string{app},
			Geometries:        []cluster.Config{geom},
			BytesPerPartition: partBytes,
			TimeoutsSec:       timeoutsSec,
			Fabric:            &network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6},
		}
		var rows []serve.StrategyRow
		if err := fl.Strategies(ctx, req, func(r serve.StrategyRow) { rows = append(rows, r) }); err != nil {
			return err
		}
		// Strategy cells dispatch whole: each row ran on exactly one
		// rendezvous worker of the fleet.
		fmt.Fprintf(w, "federated strategy grid over fleet of %d healthy workers\n", fl.Healthy())
		for _, row := range rows {
			if row.Err != "" {
				return fmt.Errorf("fleet: %s", row.Err)
			}
			printSweep(w, row.App, row.Sweep)
		}
		return nil
	}

	req := serve.SweepRequest{Apps: []string{app}, Geometries: []cluster.Config{geom}}
	var rows []serve.SweepRow
	if err := fl.Sweep(ctx, req, func(r serve.SweepRow) { rows = append(rows, r) }); err != nil {
		return err
	}
	for _, row := range rows {
		if row.Err != "" {
			return fmt.Errorf("fleet: %s", row.Err)
		}
		workers := slices.Compact(slices.Sorted(slices.Values(row.ShardWorkers)))
		fmt.Fprintf(w, "federated %s as %d trial shards over %d workers\n", row.App, row.Shards, len(workers))
		fmt.Fprintln(w, row.Metrics)
		fmt.Fprintln(w, row.Table1)
		fmt.Fprintf(w, "recommendation: %s\n", row.Recommendation)
	}
	return nil
}

// runRemoteStrategies asks a running study service for the optimizer
// sweep (POST /v1/strategies, single cell, JSON mode).
func runRemoteStrategies(w io.Writer, base, app string, partBytes int, timeoutsSec []float64, trials, iters int, latencySec, bwBps float64) error {
	req := serve.StrategiesRequest{
		Apps:              []string{app},
		Geometries:        []cluster.Config{cliGeometry(trials, iters)},
		BytesPerPartition: partBytes,
		TimeoutsSec:       timeoutsSec,
		Fabric:            &network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/strategies", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sr serve.StrategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	for _, row := range sr.Rows {
		if row.Err != "" {
			return fmt.Errorf("service: %s", row.Err)
		}
		fmt.Fprintf(w, "served by %s (%s)\n", base, row.Source)
		printSweep(w, row.App, row.Sweep)
	}
	return nil
}

// runRemote asks a running study service for the assessment.
func runRemote(w io.Writer, base, app string, partBytes int, timeoutSec float64, trials, iters int, latencySec, bwBps float64) error {
	geom := cliGeometry(trials, iters)
	spec := serve.StudySpec{
		App:               app,
		Geometry:          &geom,
		BytesPerPartition: partBytes,
		BinTimeoutSec:     timeoutSec,
		Fabric:            &network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/feasibility", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var fr serve.FeasibilityResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return err
	}
	fmt.Fprintf(w, "served by %s (%s)\n", base, fr.Source)
	fmt.Fprint(w, fr.Assessment)
	return nil
}

func run(w io.Writer, app, in string, partBytes int, timeoutSec float64, trials, iters int, latencySec, bwBps float64, strategies bool) error {
	var (
		study *core.Study
		err   error
	)
	switch {
	case in != "":
		f, err2 := os.Open(in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		var ds *trace.Dataset
		if ds, err = trace.ReadJSON(f); err != nil {
			return err
		}
		study, err = core.FromDataset(ds)
	case app != "":
		study, err = core.NewStudy(core.Options{
			App:      app,
			Geometry: cliGeometry(trials, iters),
		})
	default:
		return fmt.Errorf("one of -app or -in is required")
	}
	if err != nil {
		return err
	}

	fabric := network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6}
	if err := fabric.Validate(); err != nil {
		return err
	}
	if strategies {
		printSweep(w, study.App(), study.StrategySweep(partBytes, fabric, nil))
		return nil
	}
	a := study.Feasibility(partBytes, fabric, timeoutSec)
	fmt.Fprint(w, a)
	return nil
}
