// Command earlybird assesses the feasibility of early-bird message
// delivery for an application's thread-arrival behaviour — the question
// the paper's title poses (Figures 1-2, Section 5).
//
// It evaluates three delivery strategies over the arrival data (bulk
// baseline, fine-grained per-partition early-bird, and timeout-binned
// aggregation) on an alpha-beta fabric model, and emits the paper-style
// recommendation.
//
// Examples:
//
//	earlybird -app miniqmc
//	earlybird -in fe.json -part-bytes 262144 -bin-timeout-ms 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/network"
	"earlybird/internal/trace"
)

func main() {
	var (
		app       = flag.String("app", "", "built-in application (minife|minimd|miniqmc)")
		in        = flag.String("in", "", "dataset JSON (alternative to -app)")
		partBytes = flag.Int("part-bytes", 1<<20, "bytes per partition (one partition per thread)")
		timeoutMs = flag.Float64("bin-timeout-ms", 1.0, "binned-strategy flush timeout (ms)")
		trials    = flag.Int("trials", 3, "trials when running a built-in app")
		iters     = flag.Int("iters", 60, "iterations when running a built-in app")
		latencyUs = flag.Float64("latency-us", 1.0, "fabric latency (us)")
		bwGBs     = flag.Float64("bandwidth-gbs", 12.5, "fabric bandwidth (GB/s)")
	)
	flag.Parse()

	if err := run(*app, *in, *partBytes, *timeoutMs*1e-3, *trials, *iters, *latencyUs*1e-6, *bwGBs*1e9); err != nil {
		fmt.Fprintln(os.Stderr, "earlybird:", err)
		os.Exit(1)
	}
}

func run(app, in string, partBytes int, timeoutSec float64, trials, iters int, latencySec, bwBps float64) error {
	var (
		study *core.Study
		err   error
	)
	switch {
	case in != "":
		f, err2 := os.Open(in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		var ds *trace.Dataset
		if ds, err = trace.ReadJSON(f); err != nil {
			return err
		}
		study, err = core.FromDataset(ds)
	case app != "":
		study, err = core.NewStudy(core.Options{
			App:      app,
			Geometry: cluster.Config{Trials: trials, Ranks: 8, Iterations: iters, Threads: 48, Seed: 1},
		})
	default:
		return fmt.Errorf("one of -app or -in is required")
	}
	if err != nil {
		return err
	}

	fabric := network.Fabric{LatencySec: latencySec, BandwidthBytesPerSec: bwBps, OverheadSec: 0.3e-6}
	if err := fabric.Validate(); err != nil {
		return err
	}
	a := study.Feasibility(partBytes, fabric, timeoutSec)
	fmt.Print(a)
	return nil
}
