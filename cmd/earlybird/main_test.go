package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"earlybird/internal/serve"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := runMain(args, &out, &errOut)
	return out.String(), err
}

func newService(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunMainConflicts(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":       {"-nope"},
		"unexpected args":    {"extra"},
		"no app or in":       {},
		"remote plus fleet":  {"-app", "minife", "-remote", "http://x", "-fleet", "http://y"},
		"remote without app": {"-remote", "http://x"},
		"remote with in":     {"-remote", "http://x", "-in", "fe.json"},
		"fleet without app":  {"-fleet", "http://x"},
		"fleet with in":      {"-fleet", "http://x", "-in", "fe.json"},
		"fleet bad url":      {"-app", "minife", "-fleet", "not-a-url"},
		"fleet sweep drops feasibility flags": {
			"-app", "minife", "-fleet", "http://x", "-bin-timeout-ms", "0.5"},
		"missing input file":      {"-in", "does-not-exist.json"},
		"unknown app":             {"-app", "lulesh"},
		"bad geometry":            {"-app", "minife", "-geometry", "3x4"},
		"bad dlb":                 {"-app", "minife", "-dlb", "nope"},
		"dlb cross param":         {"-app", "minife", "-dlb", "lewi:reaction=3"},
		"geometry vs trials":      {"-app", "minife", "-geometry", "quick", "-trials", "2"},
		"geometry vs iters":       {"-app", "minife", "-geometry", "quick", "-iters", "8"},
		"dlb with in":             {"-in", "fe.json", "-dlb", "lewi"},
		"store-dir without fleet": {"-app", "minife", "-store-dir", "x"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunMainLocalAssessment(t *testing.T) {
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "10")
	if err != nil {
		t.Fatal(err)
	}
	// The assessment ends in the Section 5 verdict ("-> timeout-flush",
	// "-> fine-grained" or "-> sophisticated").
	if !strings.Contains(out, "potential overlap") || !strings.Contains(out, "-> ") {
		t.Fatalf("assessment verdict missing:\n%s", out)
	}
}

// TestRunMainGeometryDLB runs a local study through the shared -geometry
// and -dlb flags: an explicit shape with enough ranks for LeWI to fire,
// and an assessment that must differ from the static one on the same
// shape (the rebalanced dataset has different bits).
func TestRunMainGeometryDLB(t *testing.T) {
	static, err := runCmd(t, "-app", "minife", "-geometry", "1x4x12x48")
	if err != nil {
		t.Fatal(err)
	}
	lewi, err := runCmd(t, "-app", "minife", "-geometry", "1x4x12x48", "-dlb", "lewi")
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"static": static, "lewi": lewi} {
		if !strings.Contains(out, "-> ") {
			t.Fatalf("%s assessment verdict missing:\n%s", name, out)
		}
	}
	if static == lewi {
		t.Error("lewi rebalancing produced the static assessment verbatim")
	}
}

func TestRunMainLocalStrategies(t *testing.T) {
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "8", "-strategies")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-> best") {
		t.Fatalf("frontier table missing:\n%s", out)
	}
}

func TestRunMainRemote(t *testing.T) {
	ts := newService(t)
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "8", "-remote", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served by "+ts.URL) {
		t.Fatalf("remote banner missing:\n%s", out)
	}
}

// TestRunMainRemoteDLB sends the -dlb flag over the /v1 policy envelope.
func TestRunMainRemoteDLB(t *testing.T) {
	ts := newService(t)
	out, err := runCmd(t, "-app", "minife", "-geometry", "1x4x8x48", "-dlb", "drom:reaction=2", "-remote", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served by "+ts.URL) || !strings.Contains(out, "-> ") {
		t.Fatalf("remote rebalanced assessment missing:\n%s", out)
	}
}

func TestRunMainRemoteStrategies(t *testing.T) {
	ts := newService(t)
	out, err := runCmd(t, "-app", "miniqmc", "-trials", "1", "-iters", "8", "-strategies", "-remote", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-> best") {
		t.Fatalf("remote frontier missing:\n%s", out)
	}
}

// TestRunMainFleet federates a study across two in-process workers and
// renders the merged row.
func TestRunMainFleet(t *testing.T) {
	w1, w2 := newService(t), newService(t)
	out, err := runCmd(t, "-app", "minife", "-trials", "2", "-iters", "8",
		"-dlb", "lewi", "-fleet", w1.URL+","+w2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "federated minife as 2 trial shards") {
		t.Fatalf("federation banner missing:\n%s", out)
	}
	if !strings.Contains(out, "recommendation:") {
		t.Fatalf("recommendation missing:\n%s", out)
	}
}

func TestRunMainFleetStrategies(t *testing.T) {
	w1 := newService(t)
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "8", "-strategies",
		"-bin-timeout-ms", "0.5", "-fleet", w1.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "federated strategy grid over fleet of 1 healthy workers") || !strings.Contains(out, "-> best") {
		t.Fatalf("federated frontier missing:\n%s", out)
	}
	// An explicit -bin-timeout-ms replaces the default timeout axis.
	if !strings.Contains(out, "binned(500us)") {
		t.Fatalf("custom bin timeout not evaluated:\n%s", out)
	}
	if strings.Contains(out, "binned(250us)") {
		t.Fatalf("default timeout grid leaked in despite explicit -bin-timeout-ms:\n%s", out)
	}
}

func TestRunMainFleetNoHealthyWorkers(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()
	if _, err := runCmd(t, "-app", "minife", "-fleet", dead.URL); err == nil {
		t.Fatal("expected error with no healthy workers")
	}
}

// TestRunMainFleetStore: a federated run with -store-dir persists its
// merged cell, and a repeat invocation — even against a fleet whose
// only worker is long dead — answers from the durable store.
func TestRunMainFleetStore(t *testing.T) {
	dir := t.TempDir()
	w := newService(t)
	cold, err := runCmd(t, "-app", "minife", "-trials", "2", "-iters", "8",
		"-fleet", w.URL, "-store-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold, "federated minife as") {
		t.Fatalf("cold run did not federate:\n%s", cold)
	}

	dead := httptest.NewServer(nil)
	dead.Close()
	warm, err := runCmd(t, "-app", "minife", "-trials", "2", "-iters", "8",
		"-fleet", dead.URL, "-store-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm, "served minife from the durable result store (no shards dispatched)") {
		t.Fatalf("warm run not served from the store:\n%s", warm)
	}
	if !strings.Contains(warm, "recommendation:") {
		t.Fatalf("warm run missing the merged row:\n%s", warm)
	}
	// The store hit carries the exact bytes of the federated row.
	trim := func(s string) string {
		_, rest, ok := strings.Cut(s, "\n")
		if !ok {
			t.Fatalf("one-line output: %q", s)
		}
		return rest
	}
	if trim(cold) != trim(warm) {
		t.Errorf("store-served row differs from the federated row:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}
