package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"earlybird/internal/serve"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := runMain(args, &out, &errOut)
	return out.String(), err
}

func newService(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunMainConflicts(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":       {"-nope"},
		"unexpected args":    {"extra"},
		"no app or in":       {},
		"remote plus fleet":  {"-app", "minife", "-remote", "http://x", "-fleet", "http://y"},
		"remote without app": {"-remote", "http://x"},
		"remote with in":     {"-remote", "http://x", "-in", "fe.json"},
		"fleet without app":  {"-fleet", "http://x"},
		"fleet with in":      {"-fleet", "http://x", "-in", "fe.json"},
		"fleet bad url":      {"-app", "minife", "-fleet", "not-a-url"},
		"fleet sweep drops feasibility flags": {
			"-app", "minife", "-fleet", "http://x", "-bin-timeout-ms", "0.5"},
		"missing input file": {"-in", "does-not-exist.json"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunMainLocalAssessment(t *testing.T) {
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "10")
	if err != nil {
		t.Fatal(err)
	}
	// The assessment ends in the Section 5 verdict ("-> timeout-flush",
	// "-> fine-grained" or "-> sophisticated").
	if !strings.Contains(out, "potential overlap") || !strings.Contains(out, "-> ") {
		t.Fatalf("assessment verdict missing:\n%s", out)
	}
}

func TestRunMainLocalStrategies(t *testing.T) {
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "8", "-strategies")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-> best") {
		t.Fatalf("frontier table missing:\n%s", out)
	}
}

func TestRunMainRemote(t *testing.T) {
	ts := newService(t)
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "8", "-remote", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served by "+ts.URL) {
		t.Fatalf("remote banner missing:\n%s", out)
	}
}

func TestRunMainRemoteStrategies(t *testing.T) {
	ts := newService(t)
	out, err := runCmd(t, "-app", "miniqmc", "-trials", "1", "-iters", "8", "-strategies", "-remote", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-> best") {
		t.Fatalf("remote frontier missing:\n%s", out)
	}
}

// TestRunMainFleet federates a study across two in-process workers and
// renders the merged row.
func TestRunMainFleet(t *testing.T) {
	w1, w2 := newService(t), newService(t)
	out, err := runCmd(t, "-app", "minife", "-trials", "2", "-iters", "8",
		"-fleet", w1.URL+","+w2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "federated minife as 2 trial shards") {
		t.Fatalf("federation banner missing:\n%s", out)
	}
	if !strings.Contains(out, "recommendation:") {
		t.Fatalf("recommendation missing:\n%s", out)
	}
}

func TestRunMainFleetStrategies(t *testing.T) {
	w1 := newService(t)
	out, err := runCmd(t, "-app", "minife", "-trials", "1", "-iters", "8", "-strategies",
		"-bin-timeout-ms", "0.5", "-fleet", w1.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "federated strategy grid over fleet of 1 healthy workers") || !strings.Contains(out, "-> best") {
		t.Fatalf("federated frontier missing:\n%s", out)
	}
	// An explicit -bin-timeout-ms replaces the default timeout axis.
	if !strings.Contains(out, "binned(500us)") {
		t.Fatalf("custom bin timeout not evaluated:\n%s", out)
	}
	if strings.Contains(out, "binned(250us)") {
		t.Fatalf("default timeout grid leaked in despite explicit -bin-timeout-ms:\n%s", out)
	}
}

func TestRunMainFleetNoHealthyWorkers(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()
	if _, err := runCmd(t, "-app", "minife", "-fleet", dead.URL); err == nil {
		t.Fatal("expected error with no healthy workers")
	}
}
