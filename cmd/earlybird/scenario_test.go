package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cliScenario = `
name: cli-test
sources: [minife, miniqmc]
geometries: [1x2x8x48]
bin_timeouts_ms: [1]
`

func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scen.yaml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMainScenarioConflicts(t *testing.T) {
	path := writeScenario(t, cliScenario)
	cases := map[string][]string{
		"check without scenario":   {"-scenario-check"},
		"scenario with app":        {"-scenario", path, "-app", "minife"},
		"scenario with in":         {"-scenario", path, "-in", "fe.json"},
		"scenario with strategies": {"-scenario", path, "-strategies"},
		"scenario with geometry":   {"-scenario", path, "-geometry", "quick"},
		"scenario with dlb":        {"-scenario", path, "-dlb", "lewi"},
		"scenario with timeout":    {"-scenario", path, "-bin-timeout-ms", "0.5"},
		"scenario with store-dir":  {"-scenario", path, "-store-dir", "x"},
		"scenario remote+fleet":    {"-scenario", path, "-remote", "http://x", "-fleet", "http://y"},
		"scenario missing file":    {"-scenario", "does-not-exist.yaml"},
		"scenario bad doc":         {"-scenario", writeScenario(t, "sources: [lulesh]")},
	}
	for name, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunMainScenarioLocal(t *testing.T) {
	out, err := runCmd(t, "-scenario", writeScenario(t, cliScenario))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scenario cli-test: 2 cells") {
		t.Fatalf("plan header missing:\n%s", out)
	}
	if !strings.Contains(out, "coverage verified: 2 cells cover the declared cross-product exactly") {
		t.Fatalf("coverage proof missing:\n%s", out)
	}
	// One assessment line per cell, each ending in a Section 5 verdict.
	if n := strings.Count(out, "laggards"); n != 2 {
		t.Fatalf("want 2 result lines, got %d:\n%s", n, out)
	}
}

func TestRunMainScenarioCheck(t *testing.T) {
	out, err := runCmd(t, "-scenario", writeScenario(t, cliScenario), "-scenario-check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coverage verified: 2 cells") {
		t.Fatalf("coverage proof missing:\n%s", out)
	}
	if strings.Contains(out, "laggards") {
		t.Fatalf("-scenario-check ran cells:\n%s", out)
	}
}

func TestRunMainScenarioRemote(t *testing.T) {
	ts := newService(t)
	out, err := runCmd(t, "-scenario", writeScenario(t, cliScenario), "-remote", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scenario cli-test compiled server-side by "+ts.URL+": 2 cells (2 unique studies)") {
		t.Fatalf("server-side banner missing:\n%s", out)
	}
	if n := strings.Count(out, "laggards"); n != 2 {
		t.Fatalf("want 2 result lines, got %d:\n%s", n, out)
	}
}

// TestRunMainScenarioFleet federates the wire-expressible cells of a
// scenario over two in-process workers.
func TestRunMainScenarioFleet(t *testing.T) {
	w1, w2 := newService(t), newService(t)
	out, err := runCmd(t, "-scenario", writeScenario(t, cliScenario),
		"-fleet", w1.URL+","+w2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "federated 2/2 cells over 2 healthy workers") {
		t.Fatalf("federation summary missing:\n%s", out)
	}
	if n := strings.Count(out, "fleet"); n < 2 {
		t.Fatalf("want 2 fleet-placed rows:\n%s", out)
	}
}
