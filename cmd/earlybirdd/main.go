// Command earlybirdd is the study service daemon: the HTTP front end
// over the campaign engine, serving single studies, batched campaigns,
// feasibility assessments and NDJSON scenario sweeps with request
// coalescing and layered result/dataset caching.
//
//	earlybirdd -addr :8080
//	curl -s localhost:8080/v1/study -d '{"app":"minife","geometry_name":"quick"}'
//	curl -s localhost:8080/v1/sweep -d '{"apps":["minife","miniqmc"],"alphas":[0.05,0.01]}'
//	curl -s localhost:8080/v1/stats
//
// POST /v1/scenario accepts a whole declarative scenario document (the
// same YAML or JSON `earlybird -scenario` reads; trace sources inlined
// as CSV): the daemon compiles it, proves the campaign covers the
// declared cross-product exactly, and runs every cell through the same
// coalescing stack as /v1/study — federating wire-expressible cells
// when serving as a coordinator.
//
// With -peers the daemon becomes a federation coordinator: sweep cells
// fan out to the listed earlybirdd workers over /v1/shard (mergeable
// accumulator state, results provably equal to single-node execution)
// and only run locally when no healthy peer can take them.
//
//	earlybirdd -addr :8081 &                    # worker
//	earlybirdd -addr :8080 -peers http://localhost:8081   # coordinator
//
// -coordinator opens the fleet to dynamic membership: workers register
// themselves over POST /v1/fleet/join (the -join/-advertise flags run
// the worker-side heartbeat) and hold a -lease the coordinator's probe
// loop expires, so a silent worker deregisters itself. -store-dir adds
// the durable result store: merged sweep cells persist on disk keyed by
// their spec hash and survive coordinator restarts.
//
//	earlybirdd -addr :8080 -coordinator -store-dir .earlybird-store &
//	earlybirdd -addr :8081 -join http://localhost:8080 -advertise http://localhost:8081
//
// Live telemetry rides along: -metrics-addr starts a second listener
// serving only /metrics (Prometheus), /v1/progress (NDJSON study
// progress) and /v1/healthz, and -admission-watermark sheds new
// materialising studies with 503 + Retry-After while live fill
// efficiency sits below the watermark.
//
//	earlybirdd -addr :8080 -metrics-addr :9090 -admission-watermark 0.25
//
// The process drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get -drain-timeout to finish.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"earlybird/internal/cliopts"
	"earlybird/internal/fleet"
	"earlybird/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "earlybirdd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, testable without signals or a real process:
// it serves until ctx is done, then drains.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("earlybirdd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		workers       = fs.Int("workers", 0, "max concurrently executing studies (0 = one per CPU)")
		maxResults    = fs.Int("max-results", serve.DefaultMaxResults, "LRU result cache capacity (negative disables)")
		maxDatasets   = fs.Int("max-datasets", serve.DefaultMaxDatasets, "dataset cache bound (negative = unbounded)")
		maxSweep      = fs.Int("max-sweep-cached-samples", serve.DefaultMaxCachedSweepSamples, "largest geometry (samples) sweeps keep in the dataset cache; larger cells stream uncached")
		maxStudy      = fs.Int("max-study-samples", serve.DefaultMaxStudySamples, "largest geometry (samples) the materialising study endpoints accept")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain window")
		metricsAddr   = fs.String("metrics-addr", "", "optional second listener serving only /metrics, /v1/progress and /v1/healthz (observability without exposing execution)")
		watermark     = fs.Float64("admission-watermark", 0, "shed new materialising studies with 503 + Retry-After while live fill efficiency is below this (0 disables, max 1)")
		peers         = fs.String("peers", "", "comma-separated earlybirdd worker URLs; serve as a federation coordinator, fanning sweeps out over /v1/shard")
		shardsPerCell = fs.Int("shards-per-cell", 0, "trial shards per federated sweep cell (0 = one per healthy peer)")
		probeEvery    = fs.Duration("probe-interval", 5*time.Second, "how often the coordinator re-probes peer health")
		coordinator   = fs.Bool("coordinator", false, "serve as a federation coordinator with dynamic membership: workers register over POST /v1/fleet/join (usable with or without a static -peers seed)")
		lease         = fs.Duration("lease", fleet.DefaultLeaseTTL, "membership lease for dynamically joined workers; a worker that stops renewing is evicted")
		storeDir      = fs.String("store-dir", "", "durable result store directory (coordinator mode): merged sweep cells persist there and survive restarts")
		join          = fs.String("join", "", "coordinator base URL to register with as a worker (requires -advertise)")
		advertise     = fs.String("advertise", "", "externally reachable base URL of this worker, sent on -join")
		policy        = cliopts.DLB(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	coordMode := *peers != "" || *coordinator
	if !coordMode {
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"shards-per-cell", "probe-interval", "lease", "store-dir"} {
			if set[name] {
				return fmt.Errorf("-%s only applies to coordinator mode; add -peers or -coordinator", name)
			}
		}
	}
	if *join != "" && *advertise == "" {
		return fmt.Errorf("-join requires -advertise (the URL the coordinator will dispatch shards to)")
	}
	if *advertise != "" && *join == "" {
		return fmt.Errorf("-advertise only applies with -join")
	}

	if *watermark < 0 || *watermark > 1 {
		return fmt.Errorf("-admission-watermark %v out of range [0, 1]", *watermark)
	}

	opts := serve.Options{
		Workers:               *workers,
		MaxResults:            *maxResults,
		MaxDatasets:           *maxDatasets,
		MaxCachedSweepSamples: *maxSweep,
		MaxStudySamples:       *maxStudy,
		DefaultDLB:            policy.Spec,
		AdmissionWatermark:    *watermark,
	}
	if !policy.Spec.IsStatic() {
		fmt.Fprintf(stdout, "earlybirdd: default rebalancing policy %s (requests may override via their policy envelope)\n", policy.Spec)
	}
	if coordMode {
		fopts := fleet.Options{
			Peers:         fleet.SplitPeers(*peers),
			ShardsPerCell: *shardsPerCell,
			Dynamic:       *coordinator,
			LeaseTTL:      *lease,
		}
		if *storeDir != "" {
			st, err := fleet.OpenStore(*storeDir, nil)
			if err != nil {
				return err
			}
			fopts.Store = st
			fmt.Fprintf(stdout, "earlybirdd: durable result store in %s\n", st.Dir())
		}
		fl, err := fleet.New(fopts)
		if err != nil {
			return err
		}
		if len(fl.Workers()) > 0 {
			healthy := fl.Probe(ctx)
			fmt.Fprintf(stdout, "earlybirdd: coordinating %d peers (%d healthy): %s\n",
				len(fl.Workers()), healthy, strings.Join(fl.Workers(), ", "))
		}
		if *coordinator {
			fmt.Fprintf(stdout, "earlybirdd: accepting dynamic workers on POST /v1/fleet/join (lease %s)\n", *lease)
		}
		fl.StartProbes(ctx, *probeEvery)
		opts.Fleet = fl
	}

	srv := serve.New(opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(stdout, "earlybirdd: serving on %s (%d workers, %d result slots, %d dataset slots)\n",
		*addr, srv.Engine().Workers(), *maxResults, *maxDatasets)
	if *watermark > 0 {
		fmt.Fprintf(stdout, "earlybirdd: adaptive admission watermark %.2f (shedding with 503 below it)\n", *watermark)
	}
	if *join != "" {
		go heartbeat(ctx, strings.TrimRight(*join, "/"), *advertise, stdout, stderr)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: srv.ObservabilityHandler()}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				select {
				case errc <- fmt.Errorf("metrics listener: %w", err):
				default:
				}
			}
		}()
		fmt.Fprintf(stdout, "earlybirdd: metrics on %s (/metrics, /v1/progress, /v1/healthz)\n", *metricsAddr)
	}

	select {
	case err := <-errc:
		return err // a listener failed before any signal
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "earlybirdd: draining (up to %s)\n", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if metricsSrv != nil {
		if err := metricsSrv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("metrics drain: %w", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(stdout, "earlybirdd: stopped")
	return nil
}

// heartbeat is the worker side of dynamic membership: it registers this
// daemon with a coordinator over POST /v1/fleet/join and renews the
// granted lease at a third of its duration, so two missed heartbeats
// still keep the lease alive. A lost coordinator is retried until ctx
// ends; on shutdown the worker deregisters best-effort so the
// coordinator need not wait for lease expiry.
func heartbeat(ctx context.Context, coordinator, advertise string, stdout, stderr io.Writer) {
	client := &http.Client{Timeout: 5 * time.Second}
	post := func(ctx context.Context, path string) (serve.FleetJoinResponse, error) {
		var out serve.FleetJoinResponse
		body, err := json.Marshal(serve.FleetJoinRequest{URL: advertise})
		if err != nil {
			return out, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinator+path, bytes.NewReader(body))
		if err != nil {
			return out, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return out, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
		}
		_ = json.Unmarshal(raw, &out)
		return out, nil
	}
	joined := false
	delay := time.Duration(0) // register immediately, then pace by the lease
	for {
		select {
		case <-ctx.Done():
			if joined {
				lctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, _ = post(lctx, "/v1/fleet/leave")
				cancel()
			}
			return
		case <-time.After(delay):
		}
		out, err := post(ctx, "/v1/fleet/join")
		if err != nil {
			if joined || delay == 0 {
				fmt.Fprintf(stderr, "earlybirdd: fleet join %s failed: %v (retrying)\n", coordinator, err)
			}
			joined = false
			delay = 2 * time.Second
			continue
		}
		if !joined {
			fmt.Fprintf(stdout, "earlybirdd: joined fleet at %s as %s (lease %.0fs)\n", coordinator, advertise, out.LeaseSec)
		}
		joined = true
		delay = time.Duration(out.LeaseSec / 3 * float64(time.Second))
		if delay < time.Second {
			delay = time.Second
		}
	}
}
