// Command earlybirdd is the study service daemon: the HTTP front end
// over the campaign engine, serving single studies, batched campaigns,
// feasibility assessments and NDJSON scenario sweeps with request
// coalescing and layered result/dataset caching.
//
//	earlybirdd -addr :8080
//	curl -s localhost:8080/v1/study -d '{"app":"minife","geometry_name":"quick"}'
//	curl -s localhost:8080/v1/sweep -d '{"apps":["minife","miniqmc"],"alphas":[0.05,0.01]}'
//	curl -s localhost:8080/v1/stats
//
// The process drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get -drain-timeout to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"earlybird/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrently executing studies (0 = one per CPU)")
		maxResults   = flag.Int("max-results", serve.DefaultMaxResults, "LRU result cache capacity (negative disables)")
		maxDatasets  = flag.Int("max-datasets", serve.DefaultMaxDatasets, "dataset cache bound (negative = unbounded)")
		maxSweep     = flag.Int("max-sweep-cached-samples", serve.DefaultMaxCachedSweepSamples, "largest geometry (samples) sweeps keep in the dataset cache; larger cells stream uncached")
		maxStudy     = flag.Int("max-study-samples", serve.DefaultMaxStudySamples, "largest geometry (samples) the materialising study endpoints accept")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain window")
	)
	flag.Parse()

	if err := run(*addr, *workers, *maxResults, *maxDatasets, *maxSweep, *maxStudy, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "earlybirdd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxResults, maxDatasets, maxSweep, maxStudy int, drainTimeout time.Duration) error {
	srv := serve.New(serve.Options{
		Workers:               workers,
		MaxResults:            maxResults,
		MaxDatasets:           maxDatasets,
		MaxCachedSweepSamples: maxSweep,
		MaxStudySamples:       maxStudy,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()
	log.Printf("earlybirdd: serving on %s (%d workers, %d result slots, %d dataset slots)",
		addr, srv.Engine().Workers(), maxResults, maxDatasets)

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	log.Printf("earlybirdd: draining (up to %s)", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	log.Print("earlybirdd: stopped")
	return nil
}
