package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"earlybird/internal/fleet"
	"earlybird/internal/serve"
)

func runCmd(t *testing.T, ctx context.Context, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(ctx, args, &out, &errOut)
	return out.String(), err
}

func TestSplitPeers(t *testing.T) {
	got := fleet.SplitPeers(" http://a:1 ,, http://b:2,")
	if !reflect.DeepEqual(got, []string{"http://a:1", "http://b:2"}) {
		t.Fatalf("SplitPeers = %v", got)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	cases := map[string][]string{
		"unknown flag":    {"-nope"},
		"unexpected args": {"extra"},
		"bad peer url":    {"-peers", "not-a-url"},
		"listener error":  {"-addr", "127.0.0.1:999999"},
		"bad dlb":         {"-dlb", "nope"},
		"dlb cross param": {"-dlb", "drom:factor=2"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, ctx, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunServeAndDrain: the daemon serves until its context is
// cancelled, then drains cleanly — the SIGINT/SIGTERM path without the
// signals.
func TestRunServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving on", "draining", "stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDefaultDLB: -dlb sets the server-wide default rebalancing
// policy and announces it at startup.
func TestRunDefaultDLB(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-dlb", "lewi:factor=1.5", "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "default rebalancing policy lewi:factor=1.5") {
		t.Errorf("policy banner missing:\n%s", out)
	}
}

// TestRunCoordinatorMode: -peers probes the fleet and reports it before
// serving.
func TestRunCoordinatorMode(t *testing.T) {
	worker := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(worker.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-peers", ts.URL, "-probe-interval", "1s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coordinating 1 peers (1 healthy)") {
		t.Errorf("coordinator banner missing:\n%s", out)
	}
}

func TestRunCoordinatorFlagsRequirePeers(t *testing.T) {
	ctx := context.Background()
	for name, args := range map[string][]string{
		"shards-per-cell without peers": {"-shards-per-cell", "4"},
		"probe-interval without peers":  {"-probe-interval", "1s"},
	} {
		if _, err := runCmd(t, ctx, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
