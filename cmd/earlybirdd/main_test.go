package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"earlybird/internal/fleet"
	"earlybird/internal/serve"
)

func runCmd(t *testing.T, ctx context.Context, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(ctx, args, &out, &errOut)
	return out.String(), err
}

func TestSplitPeers(t *testing.T) {
	got := fleet.SplitPeers(" http://a:1 ,, http://b:2,")
	if !reflect.DeepEqual(got, []string{"http://a:1", "http://b:2"}) {
		t.Fatalf("SplitPeers = %v", got)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	cases := map[string][]string{
		"unknown flag":           {"-nope"},
		"unexpected args":        {"extra"},
		"bad peer url":           {"-peers", "not-a-url"},
		"listener error":         {"-addr", "127.0.0.1:999999"},
		"bad dlb":                {"-dlb", "nope"},
		"dlb cross param":        {"-dlb", "drom:factor=2"},
		"watermark too high":     {"-admission-watermark", "1.5"},
		"watermark negative":     {"-admission-watermark", "-0.1"},
		"bad metrics addr":       {"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:999999"},
		"join without advertise": {"-join", "http://c:8080"},
		"advertise without join": {"-advertise", "http://w:8081"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, ctx, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunServeAndDrain: the daemon serves until its context is
// cancelled, then drains cleanly — the SIGINT/SIGTERM path without the
// signals.
func TestRunServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving on", "draining", "stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDefaultDLB: -dlb sets the server-wide default rebalancing
// policy and announces it at startup.
func TestRunDefaultDLB(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-dlb", "lewi:factor=1.5", "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "default rebalancing policy lewi:factor=1.5") {
		t.Errorf("policy banner missing:\n%s", out)
	}
}

// TestRunCoordinatorMode: -peers probes the fleet and reports it before
// serving.
func TestRunCoordinatorMode(t *testing.T) {
	worker := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(worker.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-peers", ts.URL, "-probe-interval", "1s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coordinating 1 peers (1 healthy)") {
		t.Errorf("coordinator banner missing:\n%s", out)
	}
}

// TestRunMetricsListener: -metrics-addr starts a second listener that
// serves exactly the observability surface while the daemon runs, and
// -admission-watermark is announced at startup.
func TestRunMetricsListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metricsAddr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var out string
	var runErr error
	go func() {
		defer close(done)
		out, runErr = runCmd(t, ctx,
			"-addr", "127.0.0.1:0", "-metrics-addr", metricsAddr,
			"-admission-watermark", "0.4", "-drain-timeout", "5s")
	}()

	var body string
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				body = string(raw)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics listener never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{"earlybird_uptime_seconds", "earlybird_admission_watermark 0.4"} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The execution API is not exposed on the metrics listener.
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/study", metricsAddr), "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("metrics listener served /v1/study")
	}

	cancel()
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"metrics on " + metricsAddr, "adaptive admission watermark 0.40", "stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDynamicCoordinator: -coordinator boots with zero peers,
// announces the join endpoint with its lease, and -store-dir creates
// and announces the durable result store.
func TestRunDynamicCoordinator(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-coordinator",
		"-lease", "10s", "-store-dir", dir, "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"durable result store in " + dir,
		"accepting dynamic workers on POST /v1/fleet/join (lease 10s)",
		"stopped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if st, statErr := os.Stat(dir); statErr != nil || !st.IsDir() {
		t.Errorf("store directory not created: %v", statErr)
	}
}

// syncBuffer is a goroutine-safe output sink: the daemon's serve loop
// and its heartbeat goroutine both write to stdout.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunWorkerJoinsAndLeavesFleet drives the worker side of dynamic
// membership end to end: a daemon started with -join/-advertise
// registers itself with a dynamic coordinator, and on shutdown
// deregisters best-effort instead of waiting for lease expiry.
func TestRunWorkerJoinsAndLeavesFleet(t *testing.T) {
	fl, err := fleet.New(fleet.Options{Dynamic: true, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	coord := serve.New(serve.Options{Workers: 1, Fleet: fl})
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	const advertise = "http://127.0.0.1:7777"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0",
			"-join", cts.URL, "-advertise", advertise, "-drain-timeout", "5s"}, &out, &errOut)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "joined fleet at "+cts.URL+" as "+advertise+" (lease 30s)") {
		if time.Now().After(deadline) {
			t.Fatalf("worker never joined; stdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := fl.Workers(); len(got) != 1 || got[0] != advertise {
		t.Fatalf("coordinator registry after join: %v", got)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The shutdown leave is best-effort and may still be in flight when
	// run returns.
	deadline = time.Now().Add(5 * time.Second)
	for len(fl.Workers()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never deregistered on shutdown: %v", fl.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunCoordinatorFlagsRequirePeers(t *testing.T) {
	ctx := context.Background()
	for name, args := range map[string][]string{
		"shards-per-cell without peers": {"-shards-per-cell", "4"},
		"probe-interval without peers":  {"-probe-interval", "1s"},
		"lease without coordinator":     {"-lease", "10s"},
		"store-dir without coordinator": {"-store-dir", "x"},
	} {
		if _, err := runCmd(t, ctx, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
