package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"earlybird/internal/fleet"
	"earlybird/internal/serve"
)

func runCmd(t *testing.T, ctx context.Context, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(ctx, args, &out, &errOut)
	return out.String(), err
}

func TestSplitPeers(t *testing.T) {
	got := fleet.SplitPeers(" http://a:1 ,, http://b:2,")
	if !reflect.DeepEqual(got, []string{"http://a:1", "http://b:2"}) {
		t.Fatalf("SplitPeers = %v", got)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	cases := map[string][]string{
		"unknown flag":       {"-nope"},
		"unexpected args":    {"extra"},
		"bad peer url":       {"-peers", "not-a-url"},
		"listener error":     {"-addr", "127.0.0.1:999999"},
		"bad dlb":            {"-dlb", "nope"},
		"dlb cross param":    {"-dlb", "drom:factor=2"},
		"watermark too high": {"-admission-watermark", "1.5"},
		"watermark negative": {"-admission-watermark", "-0.1"},
		"bad metrics addr":   {"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:999999"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, ctx, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunServeAndDrain: the daemon serves until its context is
// cancelled, then drains cleanly — the SIGINT/SIGTERM path without the
// signals.
func TestRunServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving on", "draining", "stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDefaultDLB: -dlb sets the server-wide default rebalancing
// policy and announces it at startup.
func TestRunDefaultDLB(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-dlb", "lewi:factor=1.5", "-drain-timeout", "5s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "default rebalancing policy lewi:factor=1.5") {
		t.Errorf("policy banner missing:\n%s", out)
	}
}

// TestRunCoordinatorMode: -peers probes the fleet and reports it before
// serving.
func TestRunCoordinatorMode(t *testing.T) {
	worker := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(worker.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	out, err := runCmd(t, ctx, "-addr", "127.0.0.1:0", "-peers", ts.URL, "-probe-interval", "1s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coordinating 1 peers (1 healthy)") {
		t.Errorf("coordinator banner missing:\n%s", out)
	}
}

// TestRunMetricsListener: -metrics-addr starts a second listener that
// serves exactly the observability surface while the daemon runs, and
// -admission-watermark is announced at startup.
func TestRunMetricsListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metricsAddr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var out string
	var runErr error
	go func() {
		defer close(done)
		out, runErr = runCmd(t, ctx,
			"-addr", "127.0.0.1:0", "-metrics-addr", metricsAddr,
			"-admission-watermark", "0.4", "-drain-timeout", "5s")
	}()

	var body string
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				body = string(raw)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics listener never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{"earlybird_uptime_seconds", "earlybird_admission_watermark 0.4"} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The execution API is not exposed on the metrics listener.
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/study", metricsAddr), "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("metrics listener served /v1/study")
	}

	cancel()
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"metrics on " + metricsAddr, "adaptive admission watermark 0.40", "stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCoordinatorFlagsRequirePeers(t *testing.T) {
	ctx := context.Background()
	for name, args := range map[string][]string{
		"shards-per-cell without peers": {"-shards-per-cell", "4"},
		"probe-interval without peers":  {"-probe-interval", "1s"},
	} {
		if _, err := runCmd(t, ctx, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
