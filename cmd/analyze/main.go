// Command analyze runs the paper's Section 4 analysis pipeline over a
// dataset collected by threadtime: normality at the three aggregation
// levels, laggard classification, reclaimable-time metrics, percentile
// series and histograms.
//
// Examples:
//
//	threadtime -app minife -o fe.json
//	analyze -in fe.json
//	analyze -in fe.json -percentiles fe_percentiles.csv -hist 10us
package main

import (
	"flag"
	"fmt"
	"os"

	"earlybird/internal/analysis"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
)

// durations maps human-friendly bin width names onto seconds.
var binWidths = map[string]float64{
	"10us": 10e-6,
	"50us": 50e-6,
	"1ms":  1e-3,
}

func main() {
	var (
		in          = flag.String("in", "", "input dataset (JSON from threadtime); required")
		alpha       = flag.Float64("alpha", normality.DefaultAlpha, "normality significance level")
		laggardMs   = flag.Float64("laggard-ms", 1.0, "laggard threshold in milliseconds")
		percentiles = flag.String("percentiles", "", "write per-iteration percentile CSV to this file")
		histWidth   = flag.String("hist", "", "render application histogram with this bin width (10us|50us|1ms)")
		timeline    = flag.String("timeline", "", "write per-iteration laggard-count CSV to this file")
	)
	flag.Parse()

	if err := run(*in, *alpha, *laggardMs*1e-3, *percentiles, *histWidth, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(in string, alpha, laggardSec float64, percentilesOut, histWidth, timelineOut string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d trials x %d ranks x %d iterations x %d threads (%d samples)\n",
		ds.App, ds.Trials, ds.Ranks, ds.Iterations, ds.Threads, ds.NumSamples())

	fmt.Println("\n-- application-level normality --")
	for _, r := range analysis.ApplicationLevelNormality(ds, alpha) {
		fmt.Printf("%-18s stat %10.4f  p %.3g  reject=%v\n", r.Test, r.Statistic, r.PValue, r.RejectNormal)
	}

	fmt.Println("\n-- application-iteration normality --")
	ai := analysis.ApplicationIterationNormality(ds, alpha)
	for _, t := range normality.Tests {
		fmt.Printf("%-18s passed %d/%d iterations\n", t, ai.Passed[t], ai.Total)
	}

	fmt.Println("\n-- process-iteration normality (Table 1 row) --")
	fmt.Println(analysis.Table1Row(ds, alpha))

	fmt.Println("\n-- laggards and idle metrics --")
	st := analysis.Laggards(ds, laggardSec)
	fmt.Printf("laggard iterations: %d/%d (%.1f%%), mean magnitude %.2f ms\n",
		st.WithLaggard, st.Total, 100*st.Fraction, 1e3*st.MeanMagnitudeSec)
	fmt.Println(analysis.ComputeMetrics(ds, laggardSec))

	if percentilesOut != "" {
		ps := analysis.IterationPercentiles(ds, nil)
		if err := os.WriteFile(percentilesOut, []byte(ps.CSV(1e-3)), 0o644); err != nil {
			return err
		}
		fmt.Printf("\npercentile series written to %s (milliseconds)\n", percentilesOut)
	}

	if timelineOut != "" {
		tl := analysis.NewLaggardTimeline(ds, laggardSec)
		if err := os.WriteFile(timelineOut, []byte(tl.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nlaggard timeline written to %s (%d/%d iterations active, burstiness %.2f)\n",
			timelineOut, tl.ActiveIterations(), ds.Iterations, tl.Burstiness())
	}

	if histWidth != "" {
		w, ok := binWidths[histWidth]
		if !ok {
			return fmt.Errorf("unknown bin width %q (want 10us, 50us or 1ms)", histWidth)
		}
		h := analysis.ApplicationHistogram(ds, w)
		fmt.Printf("\n-- application histogram (%s bins, peak %.2f ms) --\n", histWidth, 1e3*h.Peak())
		fmt.Print(h.Render(40, 1e-3, "ms"))
	}
	return nil
}
