// Command analyze runs the paper's Section 4 analysis pipeline over
// datasets collected by threadtime: normality at the three aggregation
// levels, laggard classification, reclaimable-time metrics, percentile
// series and histograms.
//
// With several input files the datasets are analysed concurrently as one
// campaign on the engine, and a summary line plus feasibility verdict is
// printed per dataset as it completes. The detailed single-dataset
// outputs (-percentiles, -hist, -timeline) require exactly one input.
//
// With -app (and no input files) the dataset is not loaded but generated
// and analysed as a stream: per-iteration sample blocks feed online
// accumulators and are discarded, so geometries far beyond the paper's
// run in bounded memory (-trials/-ranks/-iters/-threads size the study).
//
// Examples:
//
//	threadtime -app minife -o fe.json
//	analyze -in fe.json
//	analyze -in fe.json -percentiles fe_percentiles.csv -hist 10us
//	analyze fe.json md.json qmc.json        # concurrent campaign
//	analyze -app minife -iters 20000        # streaming, bounded memory
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/engine"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
)

// binWidths maps human-friendly bin width names onto seconds.
var binWidths = map[string]float64{
	"10us": 10e-6,
	"50us": 50e-6,
	"1ms":  1e-3,
}

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

// runMain parses flags and routes to the campaign or streaming path.
func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("in", "", "input dataset (JSON from threadtime); more may follow as arguments")
		alpha       = fs.Float64("alpha", normality.DefaultAlpha, "normality significance level")
		laggardMs   = fs.Float64("laggard-ms", 1.0, "laggard threshold in milliseconds")
		workers     = fs.Int("workers", 0, "max concurrently analysed datasets (0 = one per CPU)")
		percentiles = fs.String("percentiles", "", "write per-iteration percentile CSV to this file (single input)")
		histWidth   = fs.String("hist", "", "render application histogram with this bin width (10us|50us|1ms; single input)")
		timeline    = fs.String("timeline", "", "write per-iteration laggard-count CSV to this file (single input)")

		app     = fs.String("app", "", "generate and analyse this application model as a stream instead of reading files")
		trials  = fs.Int("trials", 0, "streaming geometry: trials (0 = paper's 10)")
		ranks   = fs.Int("ranks", 0, "streaming geometry: ranks (0 = paper's 8)")
		iters   = fs.Int("iters", 0, "streaming geometry: iterations (0 = paper's 200)")
		threads = fs.Int("threads", 0, "streaming geometry: threads (0 = paper's 48)")
		seed    = fs.Uint64("seed", 0, "streaming geometry: master seed (0 = 1)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, not a failure
		}
		return err
	}

	files := fs.Args()
	if *in != "" {
		files = append([]string{*in}, files...)
	}
	if *app != "" {
		switch {
		case len(files) > 0:
			return fmt.Errorf("-app streams a generated study and cannot be combined with input files")
		case *percentiles != "" || *histWidth != "" || *timeline != "":
			return fmt.Errorf("-percentiles, -hist and -timeline need a materialised dataset and cannot be combined with -app")
		}
		return runStreaming(stdout, *app, *trials, *ranks, *iters, *threads, *seed, *alpha, *laggardMs*1e-3)
	}
	return run(stdout, files, *alpha, *laggardMs*1e-3, *workers, *percentiles, *histWidth, *timeline)
}

// runStreaming generates the model study online and prints the streaming
// analysis; the dataset is never materialised.
func runStreaming(w io.Writer, app string, trials, ranks, iters, threads int, seed uint64, alpha, laggardSec float64) error {
	geom := cluster.DefaultConfig()
	if trials > 0 {
		geom.Trials = trials
	}
	if ranks > 0 {
		geom.Ranks = ranks
	}
	if iters > 0 {
		geom.Iterations = iters
	}
	if threads > 0 {
		geom.Threads = threads
	}
	if seed > 0 {
		geom.Seed = seed
	}
	fmt.Fprintf(w, "streaming %s: %d trials x %d ranks x %d iterations x %d threads (%d samples, never materialised)\n",
		app, geom.Trials, geom.Ranks, geom.Iterations, geom.Threads,
		geom.Trials*geom.Ranks*geom.Iterations*geom.Threads)
	res, err := core.StreamStudy(core.Options{
		App:                 app,
		Geometry:            geom,
		Alpha:               alpha,
		LaggardThresholdSec: laggardSec,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Metrics)
	fmt.Fprintln(w, res.Table1)
	s := res.Summary()
	fmt.Fprintf(w, "summary: mean %.3f ms, stddev %.3f ms, p5 %.3f ms, median %.3f ms, p95 %.3f ms, max %.3f ms\n",
		1e3*s.Mean, 1e3*s.StdDev, 1e3*s.P5, 1e3*s.Median, 1e3*s.P95, 1e3*s.Max)
	return nil
}

func run(w io.Writer, files []string, alpha, laggardSec float64, workers int, percentilesOut, histWidth, timelineOut string) error {
	if len(files) == 0 {
		return fmt.Errorf("at least one input file is required (-in or arguments)")
	}
	if len(files) > 1 && (percentilesOut != "" || histWidth != "" || timelineOut != "") {
		return fmt.Errorf("-percentiles, -hist and -timeline need exactly one input")
	}

	specs := make([]engine.Spec, 0, len(files))
	for _, name := range files {
		ds, err := readDataset(name)
		if err != nil {
			return err
		}
		specs = append(specs, engine.Spec{
			Dataset:             ds,
			Alpha:               alpha,
			LaggardThresholdSec: laggardSec,
		})
	}

	eng := engine.New(workers)
	// Per-spec failures live on the results; render the datasets that
	// succeeded before reporting the joined error.
	results, err := eng.Run(engine.Campaign{Specs: specs})
	if len(files) == 1 {
		if err != nil {
			return err
		}
		return renderDetailed(w, results[0], alpha, laggardSec, percentilesOut, histWidth, timelineOut)
	}
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%s FAILED: %v\n", files[i], r.Err)
			continue
		}
		ds := r.Study.Dataset()
		fmt.Fprintf(w, "%s — %s: %d trials x %d ranks x %d iterations x %d threads\n",
			files[i], ds.App, ds.Trials, ds.Ranks, ds.Iterations, ds.Threads)
		fmt.Fprintf(w, "  %v\n  %v\n", r.Metrics, r.Table1)
		fmt.Fprintf(w, "  %s", r.Assessment)
	}
	return err
}

func readDataset(name string) (*trace.Dataset, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadJSON(f)
}

func renderDetailed(w io.Writer, r engine.Result, alpha, laggardSec float64, percentilesOut, histWidth, timelineOut string) error {
	ds := r.Study.Dataset()
	fmt.Fprintf(w, "dataset %s: %d trials x %d ranks x %d iterations x %d threads (%d samples)\n",
		ds.App, ds.Trials, ds.Ranks, ds.Iterations, ds.Threads, ds.NumSamples())

	fmt.Fprintln(w, "\n-- application-level normality --")
	for _, res := range analysis.ApplicationLevelNormality(ds, alpha) {
		fmt.Fprintf(w, "%-18s stat %10.4f  p %.3g  reject=%v\n", res.Test, res.Statistic, res.PValue, res.RejectNormal)
	}

	fmt.Fprintln(w, "\n-- application-iteration normality --")
	ai := analysis.ApplicationIterationNormality(ds, alpha)
	for _, t := range normality.Tests {
		fmt.Fprintf(w, "%-18s passed %d/%d iterations\n", t, ai.Passed[t], ai.Total)
	}

	fmt.Fprintln(w, "\n-- process-iteration normality (Table 1 row) --")
	fmt.Fprintln(w, r.Table1)

	fmt.Fprintln(w, "\n-- laggards and idle metrics --")
	st := r.Study.Laggards()
	fmt.Fprintf(w, "laggard iterations: %d/%d (%.1f%%), mean magnitude %.2f ms\n",
		st.WithLaggard, st.Total, 100*st.Fraction, 1e3*st.MeanMagnitudeSec)
	fmt.Fprintln(w, r.Metrics)

	fmt.Fprintln(w, "\n-- early-bird feasibility --")
	fmt.Fprint(w, r.Assessment)

	if percentilesOut != "" {
		ps := r.Study.Percentiles()
		if err := os.WriteFile(percentilesOut, []byte(ps.CSV(1e-3)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\npercentile series written to %s (milliseconds)\n", percentilesOut)
	}

	if timelineOut != "" {
		tl := analysis.NewLaggardTimeline(ds, laggardSec)
		if err := os.WriteFile(timelineOut, []byte(tl.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nlaggard timeline written to %s (%d/%d iterations active, burstiness %.2f)\n",
			timelineOut, tl.ActiveIterations(), ds.Iterations, tl.Burstiness())
	}

	if histWidth != "" {
		width, ok := binWidths[histWidth]
		if !ok {
			names := make([]string, 0, len(binWidths))
			for n := range binWidths {
				names = append(names, n)
			}
			sort.Strings(names)
			return fmt.Errorf("unknown bin width %q (want one of %v)", histWidth, names)
		}
		h := r.Study.Histogram(width)
		fmt.Fprintf(w, "\n-- application histogram (%s bins, peak %.2f ms) --\n", histWidth, 1e3*h.Peak())
		fmt.Fprint(w, h.Render(40, 1e-3, "ms"))
	}
	return nil
}
