package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/workload"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := runMain(args, &out, &errOut)
	return out.String(), err
}

// writeDataset collects a tiny dataset file for the file-based paths.
func writeDataset(t *testing.T, name string) string {
	t.Helper()
	ds, err := cluster.Run(workload.DefaultMiniFE(),
		cluster.Config{Trials: 1, Ranks: 2, Iterations: 4, Threads: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMainErrors(t *testing.T) {
	ds := writeDataset(t, "fe.json")
	cases := map[string][]string{
		"unknown flag":         {"-nope"},
		"no inputs":            {},
		"app plus files":       {"-app", "minife", ds},
		"app plus percentiles": {"-app", "minife", "-percentiles", "p.csv"},
		"multi-input detail":   {"-hist", "10us", ds, ds},
		"missing file":         {"-in", "does-not-exist.json"},
		"unknown bin width":    {"-in", ds, "-hist", "7ns"},
	}
	for name, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunMainStreaming(t *testing.T) {
	out, err := runCmd(t, "-app", "miniqmc", "-trials", "1", "-ranks", "1", "-iters", "3", "-threads", "8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "streaming miniqmc") || !strings.Contains(out, "never materialised") {
		t.Fatalf("streaming banner missing:\n%s", out)
	}
	if !strings.Contains(out, "summary:") {
		t.Fatalf("summary line missing:\n%s", out)
	}
}

func TestRunMainSingleFileDetailed(t *testing.T) {
	ds := writeDataset(t, "fe.json")
	pcsv := filepath.Join(t.TempDir(), "p.csv")
	out, err := runCmd(t, "-in", ds, "-hist", "1ms", "-percentiles", pcsv)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dataset minife", "Table 1", "early-bird feasibility", "application histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(pcsv); err != nil {
		t.Errorf("percentile CSV not written: %v", err)
	}
}

func TestRunMainCampaign(t *testing.T) {
	a := writeDataset(t, "a.json")
	b := writeDataset(t, "b.json")
	out, err := runCmd(t, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "minife"); got < 2 {
		t.Fatalf("expected both datasets rendered:\n%s", out)
	}
}
