// Command threadtime collects a thread-timing study — the data-gathering
// half of the paper's methodology (Section 3).
//
// By default it runs the calibrated stochastic model of an application at
// the paper's geometry and writes the dataset as JSON or CSV. With -live
// it instead executes the real instrumented compute kernels
// (internal/miniapps) on this host's clock — useful for studying the
// instrumentation itself, not for reproducing the paper's numbers.
//
// Examples:
//
//	threadtime -app minife -o minife.json
//	threadtime -app minimd -trials 3 -iters 50 -format csv -o md.csv
//	threadtime -app miniqmc -live -threads 8 -iters 20 -o live.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"earlybird/internal/cluster"
	"earlybird/internal/miniapps"
	"earlybird/internal/omp"
	"earlybird/internal/simclock"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "threadtime:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("threadtime", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app     = fs.String("app", "minife", "application: minife | minimd | miniqmc")
		trials  = fs.Int("trials", 10, "number of trials")
		ranks   = fs.Int("ranks", 8, "processes per job")
		iters   = fs.Int("iters", 200, "iterations per run")
		threads = fs.Int("threads", 48, "threads per process")
		seed    = fs.Uint64("seed", 1, "master seed")
		live    = fs.Bool("live", false, "run real instrumented kernels instead of the calibrated model")
		format  = fs.String("format", "json", "output format: json | csv")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var (
		ds  *trace.Dataset
		err error
	)
	if *live {
		ds, err = runLive(*app, *trials, *ranks, *iters, *threads, *seed)
	} else {
		ds, err = runModel(*app, cluster.Config{Trials: *trials, Ranks: *ranks, Iterations: *iters, Threads: *threads, Seed: *seed})
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return ds.WriteJSON(w)
	case "csv":
		return ds.WriteCSV(w)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func runModel(app string, cfg cluster.Config) (*trace.Dataset, error) {
	var m workload.Model
	switch app {
	case "minife":
		m = workload.DefaultMiniFE()
	case "minimd":
		m = workload.DefaultMiniMD()
	case "miniqmc":
		m = workload.DefaultMiniQMC()
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
	return cluster.Run(m, cfg)
}

func runLive(app string, trials, ranks, iters, threads int, seed uint64) (*trace.Dataset, error) {
	pool := omp.NewPool(threads)
	defer pool.Close()
	clock := simclock.NewReal()
	var factory func(trial, rank int) miniapps.App
	switch app {
	case "minife":
		factory = func(trial, rank int) miniapps.App { return miniapps.NewMiniFE(32, 32, 32) }
	case "minimd":
		factory = func(trial, rank int) miniapps.App {
			return miniapps.NewMiniMD(10, 4, seed+uint64(trial*1000+rank))
		}
	case "miniqmc":
		factory = func(trial, rank int) miniapps.App {
			return miniapps.NewMiniQMC(12, 400, seed+uint64(trial*1000+rank))
		}
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
	return miniapps.RunStudy(factory, pool, clock, trials, ranks, iters), nil
}
