package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"earlybird/internal/trace"
)

// tinyArgs keeps collection tests fast.
var tinyArgs = []string{"-trials", "1", "-ranks", "1", "-iters", "3", "-threads", "8"}

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(args, &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":    {"-nope"},
		"unexpected args": {"extra"},
		"unknown app":     append([]string{"-app", "nope"}, tinyArgs...),
		"unknown format":  append([]string{"-app", "minife", "-format", "xml"}, tinyArgs...),
	}
	for name, args := range cases {
		if _, _, err := runCmd(t, args...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	out, _, err := runCmd(t, append([]string{"-app", "minimd"}, tinyArgs...)...)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadJSON(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not a readable dataset: %v", err)
	}
	if ds.App != "minimd" || ds.Trials != 1 || ds.Iterations != 3 || ds.Threads != 8 {
		t.Fatalf("dataset geometry %+v", ds)
	}
}

func TestRunCSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	stdout, _, err := runCmd(t, append([]string{"-app", "minife", "-format", "csv", "-o", path}, tinyArgs...)...)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "" {
		t.Errorf("-o wrote to stdout: %q", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",") || len(strings.Split(string(data), "\n")) < 3 {
		t.Fatalf("suspicious CSV output: %q", string(data[:min(len(data), 120)]))
	}
}

// TestRunHelpIsNotAnError: -h prints usage and exits 0 (flag.ErrHelp
// must not propagate as a failure).
func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage of threadtime") {
		t.Fatalf("usage not printed:\n%s", errOut.String())
	}
}
