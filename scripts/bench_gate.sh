#!/bin/sh
# Benchmark regression gate: re-runs the gated benchmarks and compares
# their best ns/op against the checked-in BENCH_baseline.txt. Fails when
# any gated benchmark regresses by more than BENCH_GATE_PCT percent
# (default 10). When benchstat is on PATH its delta table is printed as
# a report; the pass/fail decision is the awk comparison below, so the
# gate works on a bare container too.
#
# Gated benchmarks:
#   BenchmarkStudyStreaming   — the end-to-end streaming study hot path
#   BenchmarkFillDLB/*        — the static and LeWI fill loops
#
# The comparison uses the minimum ns/op across -count runs on both
# sides: minimums are far more stable than means on shared CI hardware,
# where the noise is strictly additive. Refresh the baseline by running
# scripts/bench_baseline.sh on the reference machine after an
# intentional perf change, and commit the result.
set -eu

PCT="${BENCH_GATE_PCT:-10}"
COUNT="${BENCH_GATE_COUNT:-3}"
BASELINE="${BENCH_BASELINE:-BENCH_baseline.txt}"
CURRENT="${BENCH_CURRENT:-BENCH_current.txt}"

if [ ! -f "$BASELINE" ]; then
    echo "bench gate: missing $BASELINE (run scripts/bench_baseline.sh and commit it)" >&2
    exit 1
fi

# BENCH_GATE_COMPARE_ONLY=1 skips the benchmark run and compares an
# existing $CURRENT against $BASELINE — scripts/bench_gate_test.sh uses
# it to exercise every verdict path without running real benchmarks.
if [ "${BENCH_GATE_COMPARE_ONLY:-0}" = "1" ]; then
    if [ ! -f "$CURRENT" ]; then
        echo "bench gate: compare-only mode needs $CURRENT" >&2
        exit 1
    fi
else
    {
        go test -run '^$' -bench 'BenchmarkStudyStreaming$' -benchtime 3x -count "$COUNT" .
        go test -run '^$' -bench '^BenchmarkFillDLB$' -benchtime 3x -count "$COUNT" ./internal/cluster
    } | tee "$CURRENT"
fi

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat baseline vs current =="
    benchstat "$BASELINE" "$CURRENT" || true
fi

echo
awk -v pct="$PCT" '
    # Collect min ns/op per benchmark from both files. Result lines look
    # like "BenchmarkName[-P] <count> <value> ns/op ..."; the GOMAXPROCS
    # suffix is stripped so baselines port across core counts.
    /^Benchmark/ && $4 == "ns/op" {
        name = $1
        sub(/-[0-9]+$/, "", name)
        v = $3 + 0
        if (FILENAME == ARGV[1]) {
            if (!(name in base) || v < base[name]) base[name] = v
        } else {
            if (!(name in cur) || v < cur[name]) cur[name] = v
        }
    }
    END {
        fail = 0
        n = 0
        for (name in base) n++
        if (n == 0) {
            print "bench gate: no benchmark results parsed from baseline"
            exit 1
        }
        for (name in base) {
            if (!(name in cur)) {
                printf "bench gate: %s missing from current run\n", name
                fail = 1
                continue
            }
            limit = base[name] * (1 + pct / 100)
            verdict = "ok"
            if (cur[name] > limit) {
                verdict = "REGRESSION"
                fail = 1
            }
            printf "bench gate: %-40s base %12.0f ns/op  current %12.0f ns/op  (limit +%s%%: %12.0f)  %s\n", \
                name, base[name], cur[name], pct, limit, verdict
        }
        # A benchmark that ran but has no baseline entry must fail
        # loudly: silently skipping it would let a newly gated (or
        # renamed) benchmark drift with no gate at all until someone
        # noticed the baseline was stale.
        for (name in cur) {
            if (!(name in base)) {
                printf "bench gate: %s missing from baseline (refresh with scripts/bench_baseline.sh and commit)\n", name
                fail = 1
            }
        }
        exit fail
    }
' "$BASELINE" "$CURRENT"
