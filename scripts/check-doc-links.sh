#!/bin/sh
# Docs link check: fail if any Markdown file referenced from README.md or
# from Go sources is absent from the repository root. This is what keeps
# promises like "see DESIGN.md" honest — the references existed for two
# PRs before the files did.
set -eu
cd "$(dirname "$0")/.."

refs=$(
	{
		grep -rhoE '[A-Za-z0-9_.-]+\.md' --include='*.go' .
		grep -hoE '[A-Za-z0-9_.-]+\.md' README.md
	} | sort -u
)

status=0
for f in $refs; do
	if [ ! -f "$f" ]; then
		echo "check-doc-links: missing doc referenced from README/Go sources: $f" >&2
		status=1
	fi
done
if [ "$status" -eq 0 ]; then
	echo "check-doc-links: all $(echo "$refs" | wc -l | tr -d ' ') referenced docs exist"
fi
[ "$status" -eq 0 ] || exit $status

# The README's scenario quickstart points at examples/scenarios/: keep
# every checked-in example compiling, coverage-verified, and its trace
# references resolvable (-scenario-check compiles and proves coverage
# without running a cell).
for scen in examples/scenarios/*.yaml; do
	if ! go run ./cmd/earlybird -scenario "$scen" -scenario-check >/dev/null; then
		echo "check-doc-links: example scenario $scen failed to compile/verify" >&2
		status=1
	fi
done
if [ "$status" -eq 0 ]; then
	echo "check-doc-links: all example scenarios compile and verify"
fi
exit $status
