#!/bin/sh
# Shell test for scripts/bench_gate.sh's comparison logic, run via
# `make test-scripts` (and CI). Uses BENCH_GATE_COMPARE_ONLY=1 with
# synthetic baseline/current files so no benchmark executes; asserts
# every verdict path, in particular the once-silent one: a benchmark
# present in the current run but missing from the baseline must FAIL
# the gate, not slide through unguarded.
set -eu

here=$(cd "$(dirname "$0")" && pwd)
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fails=0
check() {
    desc=$1 want=$2 base=$3 cur=$4
    printf '%s\n' "$base" > "$tmp/base.txt"
    printf '%s\n' "$cur" > "$tmp/cur.txt"
    if (
        cd "$tmp" &&
        BENCH_GATE_COMPARE_ONLY=1 BENCH_BASELINE=base.txt BENCH_CURRENT=cur.txt \
            sh "$here/bench_gate.sh" > out.txt 2>&1
    ); then got=pass; else got=fail; fi
    if [ "$got" != "$want" ]; then
        echo "FAIL: $desc — gate ${got}ed, want $want"
        sed 's/^/    /' "$tmp/out.txt"
        fails=$((fails + 1))
    else
        echo "ok: $desc"
    fi
}

within="BenchmarkStudyStreaming-8 3 1000000 ns/op"
slower="BenchmarkStudyStreaming-8 3 1090000 ns/op"
regressed="BenchmarkStudyStreaming-8 3 1200000 ns/op"
fill="BenchmarkFillDLB/static-8 3 500000 ns/op"

check "identical results pass" pass "$within" "$within"
check "regression within the 10% budget passes" pass "$within" "$slower"
check "regression beyond the budget fails" fail "$within" "$regressed"
check "benchmark missing from current run fails" fail "$within
$fill" "$within"
check "benchmark missing from baseline fails loudly" fail "$within" "$within
$fill"
check "empty baseline fails" fail "" "$within"
# The GOMAXPROCS suffix must not defeat matching across core counts.
check "differing -P suffixes still compare" pass \
    "BenchmarkStudyStreaming-48 3 1000000 ns/op" \
    "BenchmarkStudyStreaming-4 3 1000000 ns/op"
# Min-of-count semantics: one fast run among slow ones keeps the gate
# green on both sides.
check "minimum across repeated runs is compared" pass "$within
$regressed" "$regressed
$within"

# Compare-only mode itself must insist on an existing current file.
if (
    cd "$tmp" && rm -f cur.txt && printf '%s\n' "$within" > base.txt &&
    BENCH_GATE_COMPARE_ONLY=1 BENCH_BASELINE=base.txt BENCH_CURRENT=cur.txt \
        sh "$here/bench_gate.sh" > out.txt 2>&1
); then
    echo "FAIL: compare-only without a current file passed"
    fails=$((fails + 1))
else
    echo "ok: compare-only without a current file fails"
fi

if [ "$fails" -ne 0 ]; then
    echo "bench_gate_test: $fails case(s) failed"
    exit 1
fi
echo "bench_gate_test: all cases passed"
