#!/bin/sh
# Regenerate BENCH_baseline.txt — the reference the bench gate
# (scripts/bench_gate.sh) compares against. Run on the reference
# machine after an intentional perf change and commit the result; the
# gate then fails any future change that regresses a gated benchmark by
# more than BENCH_GATE_PCT percent.
set -eu

COUNT="${BENCH_GATE_COUNT:-5}"
OUT="${BENCH_BASELINE:-BENCH_baseline.txt}"

{
    go test -run '^$' -bench 'BenchmarkStudyStreaming$' -benchtime 3x -count "$COUNT" .
    go test -run '^$' -bench '^BenchmarkFillDLB$' -benchtime 3x -count "$COUNT" ./internal/cluster
} | tee "$OUT"
