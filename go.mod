module earlybird

go 1.24
