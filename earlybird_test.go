package earlybird_test

import (
	"bytes"
	"testing"

	"earlybird"
	"earlybird/internal/trace"
)

func TestFacadeEndToEnd(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "miniqmc",
		Geometry: earlybird.Geometry{Trials: 2, Ranks: 2, Iterations: 30, Threads: 48, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := study.Metrics()
	if m.MeanMedianSec < 55e-3 || m.MeanMedianSec > 67e-3 {
		t.Errorf("median %v", m.MeanMedianSec)
	}
	a := study.Feasibility(1<<20, earlybird.OmniPath(), 1e-3)
	if a.Recommendation != earlybird.RecommendFineGrained {
		t.Errorf("recommendation %q", a.Recommendation)
	}
}

func TestFacadeGeometries(t *testing.T) {
	pg := earlybird.PaperGeometry()
	if pg.Trials != 10 || pg.Ranks != 8 || pg.Iterations != 200 || pg.Threads != 48 {
		t.Errorf("paper geometry %+v", pg)
	}
	qg := earlybird.QuickGeometry()
	if qg.Threads != 48 {
		t.Errorf("quick geometry should keep 48 threads: %+v", qg)
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "minife",
		Geometry: earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 10, Threads: 48, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.Dataset().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := earlybird.FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics().MeanMedianSec != study.Metrics().MeanMedianSec {
		t.Error("round trip changed metrics")
	}
}

func TestFacadeRunCampaign(t *testing.T) {
	small := earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 12, Threads: 48, Seed: 21}
	var streamed int
	results, err := earlybird.RunCampaign(earlybird.Campaign{
		Specs: []earlybird.CampaignSpec{
			{App: "minife", Geometry: small},
			{App: "miniqmc", Geometry: small},
			{App: "minife", Geometry: small}, // duplicate: cache-served
		},
		Collect: func(earlybird.CampaignResult) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Errorf("collector saw %d results", streamed)
	}
	if results[0].Metrics != results[2].Metrics {
		t.Error("duplicate specs disagree")
	}
	if !results[2].CacheHit {
		t.Error("duplicate spec not served from cache")
	}
	if results[1].Assessment.Recommendation != earlybird.RecommendFineGrained {
		t.Errorf("miniqmc recommendation %q", results[1].Assessment.Recommendation)
	}
}

func TestFacadeSharedEngine(t *testing.T) {
	small := earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 12, Threads: 48, Seed: 22}
	eng := earlybird.NewEngine(2)
	if _, err := eng.Run(earlybird.Campaign{Specs: []earlybird.CampaignSpec{{App: "minimd", Geometry: small}}}); err != nil {
		t.Fatal(err)
	}
	// A second campaign on the same engine reuses the cached dataset.
	results, err := eng.Run(earlybird.Campaign{Specs: []earlybird.CampaignSpec{{App: "minimd", Geometry: small, Alpha: 0.01}}})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].CacheHit {
		t.Error("second campaign did not hit the shared cache")
	}
	if got := eng.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

func TestFacadeFabric(t *testing.T) {
	f := earlybird.OmniPath()
	if f.BandwidthBytesPerSec <= 0 {
		t.Error("bad fabric")
	}
}

// TestStreamingMatchesMaterializedAtPaperGeometry is the acceptance check
// for the streaming pipeline at the paper's own 768000-sample geometry:
// every exactly-streamable metric agrees with the materialised path to
// float rounding, and the sketch-estimated IQR statistics agree within
// their documented tolerance (10% relative; in practice far closer).
func TestStreamingMatchesMaterializedAtPaperGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-geometry study skipped with -short")
	}
	streamed, err := earlybird.StreamMetrics(earlybird.Options{App: "minife"})
	if err != nil {
		t.Fatal(err)
	}
	study, err := earlybird.NewStudy(earlybird.Options{App: "minife"})
	if err != nil {
		t.Fatal(err)
	}
	exact := study.Metrics()

	rel := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		m := a
		if b > m {
			m = b
		}
		return d / m
	}
	for _, c := range []struct {
		what      string
		got, want float64
	}{
		{"MeanMedianSec", streamed.MeanMedianSec, exact.MeanMedianSec},
		{"LaggardFraction", streamed.LaggardFraction, exact.LaggardFraction},
		{"AvgReclaimableProcSec", streamed.AvgReclaimableProcSec, exact.AvgReclaimableProcSec},
		{"IdleRatioProc", streamed.IdleRatioProc, exact.IdleRatioProc},
		{"AvgReclaimableAppIterSec", streamed.AvgReclaimableAppIterSec, exact.AvgReclaimableAppIterSec},
		{"IdleRatioAppIter", streamed.IdleRatioAppIter, exact.IdleRatioAppIter},
	} {
		if rel(c.got, c.want) > 1e-9 {
			t.Errorf("%s: streaming %v vs exact %v", c.what, c.got, c.want)
		}
	}
	if rel(streamed.IQRMeanSec, exact.IQRMeanSec) > 0.10 {
		t.Errorf("IQRMeanSec: streaming %v vs exact %v (>10%%)", streamed.IQRMeanSec, exact.IQRMeanSec)
	}
	if rel(streamed.IQRMaxSec, exact.IQRMaxSec) > 0.15 {
		t.Errorf("IQRMaxSec: streaming %v vs exact %v (>15%%)", streamed.IQRMaxSec, exact.IQRMaxSec)
	}
}
