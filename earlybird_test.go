package earlybird_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"earlybird"
	"earlybird/internal/trace"
)

func TestFacadeEndToEnd(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "miniqmc",
		Geometry: earlybird.Geometry{Trials: 2, Ranks: 2, Iterations: 30, Threads: 48, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := study.Metrics()
	if m.MeanMedianSec < 55e-3 || m.MeanMedianSec > 67e-3 {
		t.Errorf("median %v", m.MeanMedianSec)
	}
	a := study.Feasibility(1<<20, earlybird.OmniPath(), 1e-3)
	if a.Recommendation != earlybird.RecommendFineGrained {
		t.Errorf("recommendation %q", a.Recommendation)
	}
}

func TestFacadeGeometries(t *testing.T) {
	pg := earlybird.PaperGeometry()
	if pg.Trials != 10 || pg.Ranks != 8 || pg.Iterations != 200 || pg.Threads != 48 {
		t.Errorf("paper geometry %+v", pg)
	}
	qg := earlybird.QuickGeometry()
	if qg.Threads != 48 {
		t.Errorf("quick geometry should keep 48 threads: %+v", qg)
	}
}

// TestFacadePolicyDLB drives the unified policy axis through the
// facade: a LeWI-rebalanced study must differ from the static one at a
// geometry with enough ranks for lending to fire, and the CLI policy
// syntax round-trips through ParseDLB.
func TestFacadePolicyDLB(t *testing.T) {
	geom := earlybird.Geometry{Trials: 1, Ranks: 4, Iterations: 12, Threads: 48, Seed: 1}
	static, err := earlybird.NewStudy(earlybird.Options{App: "minife", Geometry: geom})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := earlybird.ParseDLB("lewi")
	if err != nil {
		t.Fatal(err)
	}
	if policy.Policy != earlybird.DLBLeWI {
		t.Fatalf("ParseDLB(lewi) = %+v", policy)
	}
	lewi, err := earlybird.NewStudy(earlybird.Options{
		App:      "minife",
		Geometry: geom,
		Policy:   earlybird.PolicySpec{DLB: policy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.Metrics() == lewi.Metrics() {
		t.Error("LeWI rebalancing left the study metrics bit-identical to static")
	}
	if _, err := earlybird.ParseDLB("nope"); err == nil {
		t.Error("ParseDLB(nope): expected error")
	}
	if _, err := earlybird.NewStudy(earlybird.Options{
		App:    "minife",
		Policy: earlybird.PolicySpec{DLB: earlybird.DLBSpec{Policy: "bogus"}},
	}); err == nil {
		t.Error("bogus DLB policy: expected error")
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "minife",
		Geometry: earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 10, Threads: 48, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.Dataset().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := earlybird.FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics().MeanMedianSec != study.Metrics().MeanMedianSec {
		t.Error("round trip changed metrics")
	}
}

func TestFacadeRunCampaign(t *testing.T) {
	small := earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 12, Threads: 48, Seed: 21}
	var streamed int
	results, err := earlybird.RunCampaign(earlybird.Campaign{
		Specs: []earlybird.CampaignSpec{
			{App: "minife", Geometry: small},
			{App: "miniqmc", Geometry: small},
			{App: "minife", Geometry: small}, // duplicate: cache-served
		},
		Collect: func(earlybird.CampaignResult) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Errorf("collector saw %d results", streamed)
	}
	if results[0].Metrics != results[2].Metrics {
		t.Error("duplicate specs disagree")
	}
	if !results[2].CacheHit {
		t.Error("duplicate spec not served from cache")
	}
	if results[1].Assessment.Recommendation != earlybird.RecommendFineGrained {
		t.Errorf("miniqmc recommendation %q", results[1].Assessment.Recommendation)
	}
}

func TestFacadeSharedEngine(t *testing.T) {
	small := earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 12, Threads: 48, Seed: 22}
	eng := earlybird.NewEngine(2)
	if _, err := eng.Run(earlybird.Campaign{Specs: []earlybird.CampaignSpec{{App: "minimd", Geometry: small}}}); err != nil {
		t.Fatal(err)
	}
	// A second campaign on the same engine reuses the cached dataset.
	results, err := eng.Run(earlybird.Campaign{Specs: []earlybird.CampaignSpec{{App: "minimd", Geometry: small, Alpha: 0.01}}})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].CacheHit {
		t.Error("second campaign did not hit the shared cache")
	}
	if got := eng.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

func TestFacadeFabric(t *testing.T) {
	f := earlybird.OmniPath()
	if f.BandwidthBytesPerSec <= 0 {
		t.Error("bad fabric")
	}
}

// TestStreamingMatchesMaterializedAtPaperGeometry is the acceptance check
// for the streaming pipeline at the paper's own 768000-sample geometry:
// every exactly-streamable metric agrees with the materialised path to
// float rounding, and the sketch-estimated IQR statistics agree within
// their documented tolerance (10% relative; in practice far closer).
func TestStreamingMatchesMaterializedAtPaperGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-geometry study skipped with -short")
	}
	streamed, err := earlybird.StreamMetrics(earlybird.Options{App: "minife"})
	if err != nil {
		t.Fatal(err)
	}
	study, err := earlybird.NewStudy(earlybird.Options{App: "minife"})
	if err != nil {
		t.Fatal(err)
	}
	exact := study.Metrics()

	rel := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		m := a
		if b > m {
			m = b
		}
		return d / m
	}
	for _, c := range []struct {
		what      string
		got, want float64
	}{
		{"MeanMedianSec", streamed.MeanMedianSec, exact.MeanMedianSec},
		{"LaggardFraction", streamed.LaggardFraction, exact.LaggardFraction},
		{"AvgReclaimableProcSec", streamed.AvgReclaimableProcSec, exact.AvgReclaimableProcSec},
		{"IdleRatioProc", streamed.IdleRatioProc, exact.IdleRatioProc},
		{"AvgReclaimableAppIterSec", streamed.AvgReclaimableAppIterSec, exact.AvgReclaimableAppIterSec},
		{"IdleRatioAppIter", streamed.IdleRatioAppIter, exact.IdleRatioAppIter},
	} {
		if rel(c.got, c.want) > 1e-9 {
			t.Errorf("%s: streaming %v vs exact %v", c.what, c.got, c.want)
		}
	}
	if rel(streamed.IQRMeanSec, exact.IQRMeanSec) > 0.10 {
		t.Errorf("IQRMeanSec: streaming %v vs exact %v (>10%%)", streamed.IQRMeanSec, exact.IQRMeanSec)
	}
	if rel(streamed.IQRMaxSec, exact.IQRMaxSec) > 0.15 {
		t.Errorf("IQRMaxSec: streaming %v vs exact %v (>15%%)", streamed.IQRMaxSec, exact.IQRMaxSec)
	}
}

// TestFacadeRunCampaignErrorPropagation: per-spec failures land on the
// result and in the joined error, while valid sibling specs still
// complete.
func TestFacadeRunCampaignErrorPropagation(t *testing.T) {
	small := earlybird.Geometry{Trials: 1, Ranks: 1, Iterations: 8, Threads: 16, Seed: 30}
	results, err := earlybird.RunCampaign(earlybird.Campaign{
		Specs: []earlybird.CampaignSpec{
			{App: "no-such-app", Geometry: small},
			{App: "minife", Geometry: small},
		},
	})
	if err == nil {
		t.Fatal("expected a joined error for the failing spec")
	}
	if results[0].Err == nil {
		t.Error("failing spec has no per-result error")
	}
	if results[1].Err != nil || results[1].Metrics.MeanMedianSec <= 0 {
		t.Errorf("valid sibling spec did not complete: %+v", results[1])
	}
	if _, err := earlybird.RunCampaign(earlybird.Campaign{Specs: []earlybird.CampaignSpec{{}}}); err == nil {
		t.Error("empty spec should fail to resolve")
	}
}

// TestFacadeStrategySweep exercises the PR 4 strategy-lab aliases from
// the public API: the sweep returns the full grid, the frontier fields
// are consistent, and the alias types interoperate.
func TestFacadeStrategySweep(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "minife",
		Geometry: earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 10, Threads: 48, Seed: 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sw earlybird.StrategySweep = study.StrategySweep(1<<20, earlybird.OmniPath(), nil)
	if len(sw.Results) < 4 {
		t.Fatalf("strategy grid has %d results, want the full optimizer set", len(sw.Results))
	}
	var best earlybird.StrategyResult
	found := false
	for _, r := range sw.Results {
		if r.Strategy == sw.Best {
			best, found = r, true
		}
	}
	if !found {
		t.Fatalf("frontier names unknown strategy %q", sw.Best)
	}
	if best.MeanFinishSec != sw.BestFinishSec {
		t.Errorf("frontier finish %v != best result %v", sw.BestFinishSec, best.MeanFinishSec)
	}
	for _, r := range sw.Results {
		if r.MeanFinishSec < sw.BestFinishSec {
			t.Errorf("%s finishes before the declared best", r.Strategy)
		}
	}
}

// TestFacadeServeListenerError: Serve must surface listener failures
// instead of hanging.
func TestFacadeServeListenerError(t *testing.T) {
	err := earlybird.Serve(context.Background(), "127.0.0.1:999999", earlybird.ServeOptions{})
	if err == nil {
		t.Fatal("expected listener error")
	}
}

// TestFacadeServeShutdown: Serve drains and returns nil when its context
// is cancelled.
func TestFacadeServeShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- earlybird.Serve(ctx, "127.0.0.1:0", earlybird.ServeOptions{Workers: 1}) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain after cancellation")
	}
}

// TestFacadeFleetSweep: the one-call federation facade scatters a sweep
// over in-process workers and returns rows in grid order, bit-identical
// to local streaming analysis.
func TestFacadeFleetSweep(t *testing.T) {
	w1 := httptest.NewServer(earlybird.NewServer(earlybird.ServeOptions{Workers: 2}).Handler())
	defer w1.Close()
	w2 := httptest.NewServer(earlybird.NewServer(earlybird.ServeOptions{Workers: 2}).Handler())
	defer w2.Close()

	geom := earlybird.Geometry{Trials: 2, Ranks: 2, Iterations: 8, Threads: 48, Seed: 32}
	rows, err := earlybird.FleetSweep(context.Background(), []string{w1.URL, w2.URL}, earlybird.SweepRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []earlybird.Geometry{geom},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d, want 2", len(rows))
	}
	for i, row := range rows {
		if row.Index != i {
			t.Errorf("rows not in grid order: %v at %d", row.Index, i)
		}
		if row.Err != "" {
			t.Fatalf("cell %d errored: %s", i, row.Err)
		}
		if row.Shards != 2 {
			t.Errorf("cell %d used %d shards, want 2", i, row.Shards)
		}
	}

	// The merged minife row equals local streaming execution bit-exactly
	// for the exact metrics.
	res, err := earlybird.StreamMetrics(earlybird.Options{App: "minife", Geometry: geom})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Metrics.MeanMedianSec != res.MeanMedianSec ||
		rows[0].Metrics.AvgReclaimableProcSec != res.AvgReclaimableProcSec {
		t.Errorf("federated metrics diverge from local streaming:\nfleet %+v\nlocal %+v", rows[0].Metrics, res)
	}

	// No healthy workers: a fresh fleet over a dead URL fails fast.
	dead := httptest.NewServer(nil)
	dead.Close()
	if _, err := earlybird.FleetSweep(context.Background(), []string{dead.URL}, earlybird.SweepRequest{Apps: []string{"minife"}}); err == nil {
		t.Error("expected error with no healthy workers")
	}
	if _, err := earlybird.NewFleet(earlybird.FleetOptions{}); err == nil {
		t.Error("NewFleet with no peers should fail")
	}
}

// TestFacadeProgress: ProgressID is deterministic over the study
// coordinates, and the id published by a server's /v1/progress endpoint
// after a study is exactly the facade-derived one.
func TestFacadeProgress(t *testing.T) {
	geom := earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 8, Threads: 48, Seed: 7}
	id := earlybird.ProgressID("minife", geom, earlybird.DLBSpec{})
	if id == "" || id != earlybird.ProgressID("minife", geom, earlybird.DLBSpec{}) {
		t.Fatalf("ProgressID not deterministic: %q", id)
	}
	if other := earlybird.ProgressID("miniqmc", geom, earlybird.DLBSpec{}); other == id {
		t.Fatal("distinct apps share a progress id")
	}

	ts := httptest.NewServer(earlybird.NewServer(earlybird.ServeOptions{Workers: 1}).Handler())
	defer ts.Close()
	body := bytes.NewBufferString(`{"app":"minife","geometry":{"trials":1,"ranks":2,"iterations":8,"threads":48,"seed":7}}`)
	resp, err := http.Post(ts.URL+"/v1/study", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/progress?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status %d for id %s", resp.StatusCode, id)
	}
	var p earlybird.Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.ID != id || !p.Done {
		t.Fatalf("progress = %+v, want done snapshot for %s", p, id)
	}
}
