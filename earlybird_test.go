package earlybird_test

import (
	"bytes"
	"testing"

	"earlybird"
	"earlybird/internal/trace"
)

func TestFacadeEndToEnd(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "miniqmc",
		Geometry: earlybird.Geometry{Trials: 2, Ranks: 2, Iterations: 30, Threads: 48, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := study.Metrics()
	if m.MeanMedianSec < 55e-3 || m.MeanMedianSec > 67e-3 {
		t.Errorf("median %v", m.MeanMedianSec)
	}
	a := study.Feasibility(1<<20, earlybird.OmniPath(), 1e-3)
	if a.Recommendation != earlybird.RecommendFineGrained {
		t.Errorf("recommendation %q", a.Recommendation)
	}
}

func TestFacadeGeometries(t *testing.T) {
	pg := earlybird.PaperGeometry()
	if pg.Trials != 10 || pg.Ranks != 8 || pg.Iterations != 200 || pg.Threads != 48 {
		t.Errorf("paper geometry %+v", pg)
	}
	qg := earlybird.QuickGeometry()
	if qg.Threads != 48 {
		t.Errorf("quick geometry should keep 48 threads: %+v", qg)
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	study, err := earlybird.NewStudy(earlybird.Options{
		App:      "minife",
		Geometry: earlybird.Geometry{Trials: 1, Ranks: 2, Iterations: 10, Threads: 48, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.Dataset().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := earlybird.FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics().MeanMedianSec != study.Metrics().MeanMedianSec {
		t.Error("round trip changed metrics")
	}
}

func TestFacadeFabric(t *testing.T) {
	f := earlybird.OmniPath()
	if f.BandwidthBytesPerSec <= 0 {
		t.Error("bad fabric")
	}
}
