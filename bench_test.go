// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per experiment, DESIGN.md E1-E13). Dataset
// generation is excluded from timing via a shared suite built on first
// use; BenchmarkStudyGeneration measures generation itself.
//
// Run: go test -bench=. -benchmem
package earlybird_test

import (
	"io"
	"sync"
	"testing"
	"time"

	"earlybird"
	"earlybird/internal/experiments"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/rng"
	"earlybird/internal/simclock"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite returns a shared suite at the reduced geometry (3 x 4 x 60 x
// 48 = 34560 samples/app) with all three datasets pre-generated.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Quick())
		for _, app := range experiments.AppNames {
			suite.Dataset(app)
		}
	})
	return suite
}

// BenchmarkStudyGeneration measures producing one application's dataset
// (the data-collection half of the pipeline).
func BenchmarkStudyGeneration(b *testing.B) {
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := earlybird.NewStudy(earlybird.Options{App: app, Geometry: earlybird.QuickGeometry()})
				if err != nil {
					b.Fatal(err)
				}
				_ = s
			}
		})
	}
}

// BenchmarkAppLevelNormality regenerates E1 (Section 4.1, application
// aggregation: all tests reject).
func BenchmarkAppLevelNormality(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.E1AppLevelNormality()
		if !res["minife"][normality.ShapiroWilk].RejectNormal {
			b.Fatal("unexpected pass")
		}
	}
}

// BenchmarkAppIterationNormality regenerates E2 (per-iteration tests).
func BenchmarkAppIterationNormality(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := s.E2AppIterationNormality()
		if sum["minife"].Total == 0 {
			b.Fatal("no iterations tested")
		}
	}
}

// BenchmarkTable1ProcessIterationNormality regenerates E3 (Table 1).
func BenchmarkTable1ProcessIterationNormality(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.E3Table1()
		if len(rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkFig3Histograms regenerates E4 (application histograms, 10us
// bins).
func BenchmarkFig3Histograms(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.E4Fig3Histograms()
		if h["miniqmc"].Total == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFig4MiniFEPercentiles regenerates E5 (Figure 4).
func BenchmarkFig4MiniFEPercentiles(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := s.E5Fig4MiniFEPercentiles()
		if len(ps.Values) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig5MiniFELaggards regenerates E6 (Figure 5).
func BenchmarkFig5MiniFELaggards(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.E6Fig5MiniFELaggards()
		if r.LaggardFraction <= 0 {
			b.Fatal("no laggards")
		}
	}
}

// BenchmarkFig6MiniMDPercentiles regenerates E7 (Figure 6).
func BenchmarkFig6MiniMDPercentiles(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.E7Fig6MiniMDPercentiles()
		if r.Phase1IQRMean <= r.Phase2IQRMean {
			b.Fatal("phase structure lost")
		}
	}
}

// BenchmarkFig7MiniMDLaggards regenerates E8 (Figure 7).
func BenchmarkFig7MiniMDLaggards(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.E8Fig7MiniMDLaggards()
		if r.Phase1 == nil {
			b.Fatal("missing histogram")
		}
	}
}

// BenchmarkFig8MiniQMCPercentiles regenerates E9 (Figure 8).
func BenchmarkFig8MiniQMCPercentiles(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := s.E9Fig8MiniQMCPercentiles()
		if len(ps.Values) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig9MiniQMCHistogram regenerates E10 (Figure 9).
func BenchmarkFig9MiniQMCHistogram(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.E10Fig9MiniQMCHistogram()
		if h.Total == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkScalarMetrics regenerates E11 (Section 4.2 scalars).
func BenchmarkScalarMetrics(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := s.E11Metrics()
		if m["miniqmc"].AvgReclaimableProcSec <= m["minimd"].AvgReclaimableProcSec {
			b.Fatal("ordering lost")
		}
	}
}

// BenchmarkEarlybirdOverlap regenerates E12 (delivery strategies,
// Figures 1-2 / Section 5).
func BenchmarkEarlybirdOverlap(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.E12Overlap()
		if len(res["minife"]) != 3 {
			b.Fatal("strategies missing")
		}
	}
}

// BenchmarkComputeTimeDerivation regenerates E13: the skew-cancelling
// compute-time derivation over one full recorder (Section 3.1).
func BenchmarkComputeTimeDerivation(b *testing.B) {
	clock := simclock.NewSkewed(simclock.NewVirtual(), []time.Duration{0, 5e6, -3e6, 250e3})
	rec := trace.NewRecorder(clock, 200, 48)
	for iter := 0; iter < 200; iter++ {
		for th := 0; th < 48; th++ {
			rec.Enter(iter, th, th)
			rec.Exit(iter, th, th)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for iter := 0; iter < 200; iter++ {
			for _, v := range rec.IterationSeconds(iter) {
				sum += v
			}
		}
		_ = sum
	}
}

// BenchmarkFullReport measures the complete paper reproduction pipeline
// end to end (all twelve experiments) at the reduced geometry.
func BenchmarkFullReport(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WriteReport(io.Discard)
	}
}

func rngRoot() *rng.Source { return rng.New(1) }

// BenchmarkWorkloadFill measures raw sample generation per process
// iteration for each model.
func BenchmarkWorkloadFill(b *testing.B) {
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC(),
	} {
		b.Run(m.Name(), func(b *testing.B) {
			root := rngRoot()
			out := make([]float64, 48)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.FillProcessIteration(root, i%7, i%5, i%199, out)
			}
		})
	}
}

// BenchmarkStrategyFinish measures one strategy evaluation over a single
// 48-thread arrival set.
func BenchmarkStrategyFinish(b *testing.B) {
	arrivals := make([]float64, 48)
	for i := range arrivals {
		arrivals[i] = 26.3e-3 + float64(i)*1e-5
	}
	f := network.OmniPath()
	for _, s := range []partcomm.Strategy{partcomm.Bulk{}, partcomm.FineGrained{}, partcomm.Binned{TimeoutSec: 1e-3}} {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s.FinishTime(arrivals, 1<<20, f) <= 0 {
					b.Fatal("bad finish time")
				}
			}
		})
	}
}

// BenchmarkStudyMaterialized runs the classic pipeline at the paper's
// geometry: generate the full 768000-sample dataset, then compute the
// Section 4.2 metrics from the materialised tensor. The B/op column is
// the number the streaming benchmark below is measured against.
func BenchmarkStudyMaterialized(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := earlybird.NewStudy(earlybird.Options{App: "minife"})
		if err != nil {
			b.Fatal(err)
		}
		if m := s.Metrics(); m.MeanMedianSec <= 0 {
			b.Fatal("implausible metrics")
		}
	}
}

// BenchmarkStudyStreaming runs the same study and the same metrics at
// the paper's geometry through the streaming pipeline: samples feed
// per-worker accumulators as they are produced and are never held as a
// dataset. Compare time, B/op and allocs/op against
// BenchmarkStudyMaterialized (make bench-json records both).
func BenchmarkStudyStreaming(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := earlybird.StreamMetrics(earlybird.Options{App: "minife"})
		if err != nil {
			b.Fatal(err)
		}
		if m.MeanMedianSec <= 0 {
			b.Fatal("implausible metrics")
		}
	}
}

// BenchmarkStudyStreamingHuge is the streaming pipeline at 100x the
// paper's sample count (HugeGeometry, 76.8M samples — a 614 MB tensor
// if materialised). One iteration is a full study, so run it with a
// small -benchtime; it exists to measure how the hot-path optimisations
// compound at scale, where the per-block costs dominate completely.
func BenchmarkStudyStreamingHuge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := earlybird.StreamMetrics(earlybird.Options{App: "minife", Geometry: earlybird.HugeGeometry()})
		if err != nil {
			b.Fatal(err)
		}
		if m.MeanMedianSec <= 0 {
			b.Fatal("implausible metrics")
		}
	}
}
