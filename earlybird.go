// Package earlybird reproduces the measurement and feasibility study of
// "Measuring Thread Timing to Assess the Feasibility of Early-bird
// Message Delivery" (Marts et al., 2023): per-thread timing
// instrumentation of fork/join compute regions, statistical analysis of
// thread-arrival distributions, and evaluation of early-bird partitioned
// message delivery against the measured arrivals.
//
// Quick start:
//
//	study, err := earlybird.NewStudy(earlybird.Options{App: "minife"})
//	if err != nil { ... }
//	fmt.Println(study.Metrics())                       // Section 4.2 scalars
//	fmt.Println(study.Table1())                        // Table 1 row
//	a := study.Feasibility(1<<20, earlybird.OmniPath(), 1e-3)
//	fmt.Println(a.Recommendation)                      // Section 5 verdict
//
// Batches of studies run as a campaign: RunCampaign fans the specs out
// over a bounded worker pool, deduplicates identical specs to a single
// execution, serves repeated (model, geometry, seed) datasets from a
// content-addressed cache, and streams results to a collector as they
// complete — deterministically, regardless of scheduling order:
//
//	results, err := earlybird.RunCampaign(earlybird.Campaign{
//		Specs: []earlybird.CampaignSpec{
//			{App: "minife"},
//			{App: "minimd", Geometry: earlybird.QuickGeometry()},
//			{App: "miniqmc", Alpha: 0.01},
//		},
//	})
//
// To share the dataset cache across several campaigns, create one engine
// with NewEngine and call its Run method directly.
//
// The same engine can front HTTP traffic: NewServer (or the blocking
// Serve) exposes /v1/study, /v1/campaign, /v1/feasibility, the
// NDJSON-streaming /v1/sweep and the /v1/strategies delivery-strategy
// optimizer with singleflight request coalescing and a bounded LRU
// result cache layered over the dataset cache — see internal/serve and
// the cmd/earlybirdd daemon.
//
// Sweeps scale past one machine with the fleet layer: NewFleet /
// FleetSweep scatter a scenario grid across remote earlybirdd workers
// as trial shards (POST /v1/shard returns mergeable accumulator state)
// and gather results that are bit-identical to single-node execution
// for every exact metric — see internal/fleet and the cmd/earlybirdd
// -peers coordinator mode.
//
// Whole campaigns can be declared instead of assembled: ParseScenario
// reads a YAML or JSON scenario — application or trace-replay sources
// crossed with geometry, noise, DLB-policy, fabric and timeout axes —
// and its Compile produces engine campaign cells whose exact coverage
// of the declared cross-product Verify proves before anything runs.
// cmd/earlybird -scenario and the service's POST /v1/scenario are the
// packaged forms — see internal/scenario.
//
// The strategy lab extends the paper's Section 5 feasibility question:
// Study.StrategySweep (and cmd/earlybird -strategies) evaluates a grid
// of delivery strategies — including adaptive ones: EWMA-predicted
// timeout binning, laggard-aware batching and an IQR-switching hybrid —
// over the measured arrivals on the cursor path and reports the
// frontier.
//
// The heavy lifting lives in the internal packages (omp, trace, workload,
// cluster, engine, stats/normality, partcomm, analysis, experiments);
// this package is the stable facade.
package earlybird

import (
	"context"
	"fmt"
	"net/http"
	"sort"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/fleet"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/scenario"
	"earlybird/internal/serve"
	"earlybird/internal/telemetry"
	"earlybird/internal/trace"
)

// Study is a collected thread-timing dataset plus analysis configuration.
type Study = core.Study

// Options configures NewStudy.
type Options = core.Options

// Assessment is an early-bird feasibility verdict.
type Assessment = core.Assessment

// Recommendation classifies how an application should employ early-bird
// communication (Section 5 of the paper).
type Recommendation = core.Recommendation

// Recommendation values.
const (
	RecommendTimeoutFlush  = core.RecommendTimeoutFlush
	RecommendFineGrained   = core.RecommendFineGrained
	RecommendSophisticated = core.RecommendSophisticated
)

// PolicySpec bundles a study's policy axes — the delivery-strategy set,
// the runtime rebalancing (DLB) policy the dataset is generated under,
// the normality significance level and the laggard rule — as
// Options.Policy. Zero fields inherit the paper's defaults, and the
// flat Options fields keep working for existing callers.
type PolicySpec = core.PolicySpec

// DLBSpec selects and parameterises a runtime rebalancing policy: the
// static thread layout (the zero value), LeWI lend-when-idle, or
// DROM-style reassignment with a reaction latency. It joins the engine
// cache key, so differently balanced runs never share a dataset.
type DLBSpec = dlb.Spec

// Rebalancing policy names for DLBSpec.Policy.
const (
	DLBStatic = dlb.PolicyStatic
	DLBLeWI   = dlb.PolicyLeWI
	DLBDROM   = dlb.PolicyDROM
)

// ParseDLB reads the CLI form of a rebalancing policy — "static",
// "lewi:factor=1.5,lend=0.3", "drom:reaction=2" — as accepted by the
// commands' shared -dlb flag; DLBSpec.String renders it back.
func ParseDLB(text string) (DLBSpec, error) { return dlb.Parse(text) }

// Geometry is a study size (trials x ranks x iterations x threads).
type Geometry = cluster.Config

// Fabric is an alpha-beta interconnect parameterisation for feasibility
// evaluation.
type Fabric = network.Fabric

// Dataset is the raw compute-time tensor of a study.
type Dataset = trace.Dataset

// AppMetrics holds the Section 4.2 scalar metrics of a study.
type AppMetrics = analysis.AppMetrics

// DeliveryStrategy is a message-delivery policy evaluated over measured
// thread arrivals (see internal/partcomm: Bulk, FineGrained, Binned,
// EWMABinned, LaggardAware, Hybrid).
type DeliveryStrategy = partcomm.Strategy

// StrategyResult summarises one delivery strategy over a study.
type StrategyResult = partcomm.Result

// StrategySweep is the outcome of a delivery-strategy grid evaluation:
// per-strategy results plus the frontier. Produced by
// Study.StrategySweep and the /v1/strategies endpoint.
type StrategySweep = partcomm.Sweep

// NewStudy runs a study with the given options.
func NewStudy(opts Options) (*Study, error) { return core.NewStudy(opts) }

// StreamResult is the outcome of a streaming study: Section 4.2 metrics,
// Table 1 row and application-level summary, computed online while the
// samples were produced.
type StreamResult = core.StreamResult

// StreamStudy runs a study in streaming mode: per-iteration sample
// blocks feed mergeable accumulators and are then discarded, so
// geometries far beyond the paper's (HugeGeometry and up) run in bounded
// memory. The exact materialised path remains available via NewStudy.
func StreamStudy(opts Options) (*StreamResult, error) { return core.StreamStudy(opts) }

// StreamMetrics is StreamStudy reduced to the Section 4.2 scalar
// metrics — the cheapest full-study analysis path.
func StreamMetrics(opts Options) (AppMetrics, error) { return core.StreamMetrics(opts) }

// FromDataset wraps a previously collected dataset.
func FromDataset(d *Dataset) (*Study, error) { return core.FromDataset(d) }

// PaperGeometry returns the paper's configuration: 10 trials, 8 ranks,
// 200 iterations, 48 threads.
func PaperGeometry() Geometry { return cluster.DefaultConfig() }

// QuickGeometry returns a reduced configuration for experimentation.
func QuickGeometry() Geometry { return cluster.SmallConfig() }

// HugeGeometry returns a configuration with 100x the paper's sample
// count (76.8 million samples). Materialised this would be a 614 MB
// tensor; StreamStudy analyses it in bounded memory.
func HugeGeometry() Geometry { return cluster.HugeConfig() }

// OmniPath returns the interconnect parameters representative of the
// paper's testbed fabric.
func OmniPath() Fabric { return network.OmniPath() }

// Campaign is a batch of study specs plus execution policy.
type Campaign = engine.Campaign

// CampaignSpec describes one study of a campaign; zero fields fill with
// the paper's defaults.
type CampaignSpec = engine.Spec

// CampaignResult is the analysed outcome of one campaign spec.
type CampaignResult = engine.Result

// Engine executes campaigns over a shared content-addressed dataset
// cache.
type Engine = engine.Engine

// NewEngine returns an engine whose campaigns run at most workers studies
// concurrently; workers <= 0 means one per usable CPU. Campaigns run on
// one engine share its dataset cache.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// RunCampaign executes the campaign on a fresh engine and returns one
// result per spec, in spec order. Identical specs execute once; per-spec
// failures are recorded on the results and joined into the returned
// error.
func RunCampaign(c Campaign) ([]CampaignResult, error) {
	return engine.New(c.Workers).Run(c)
}

// Server is the HTTP study service: JSON endpoints for single studies,
// batched campaigns, feasibility assessments and NDJSON scenario sweeps
// over one campaign engine, with singleflight request coalescing and a
// bounded LRU result cache in front of the engine's dataset cache.
type Server = serve.Server

// ServeOptions configures NewServer and Serve. The zero value serves
// with one worker per CPU and the default cache bounds.
type ServeOptions = serve.Options

// NewServer returns a ready-to-serve study service. Use its Handler to
// embed the API in an existing mux, or ListenAndServe/Shutdown to run it
// standalone; cmd/earlybirdd is the packaged daemon.
func NewServer(opts ServeOptions) *Server { return serve.New(opts) }

// Progress is a live point-in-time snapshot of a running (or recently
// finished) study: trials and sample blocks completed, EWMA fill rate,
// estimated time to completion, parallel fill efficiency and DLB lend
// events. Streams from the server's /v1/progress endpoint as NDJSON and
// appears in /v1/stats under telemetry.active.
type Progress = telemetry.Progress

// ProgressID derives the stable identifier a study's live progress is
// published under at /v1/progress?id=. It hashes the same execution
// coordinates as the engine's dataset cache key (app, geometry, seed,
// resolved rebalancing policy), so two requests for the same study —
// including coalesced duplicates — share one progress stream.
func ProgressID(app string, geom Geometry, policy DLBSpec) string {
	return serve.ProgressID(app, geom, policy)
}

// Fleet federates sweep execution across remote earlybirdd workers:
// health-probed registry, rendezvous cell scheduling, bounded dispatch,
// failover, and shard-state merging that is provably equivalent to
// single-node execution (bit-exact for moment-derived metrics and
// Table 1, rank-error-bounded for sketch quantiles).
type Fleet = fleet.Fleet

// FleetOptions configures NewFleet.
type FleetOptions = fleet.Options

// FleetStore is the coordinator's durable content-addressed result
// store: completed sweep cells persist to disk keyed by their resolved
// execution spec and are re-served across coordinator restarts without
// dispatching a single shard. Set it as FleetOptions.Store.
type FleetStore = fleet.Store

// OpenFleetStore opens (creating if needed) a durable result store
// rooted at dir, logging skipped/corrupt records through the standard
// logger.
func OpenFleetStore(dir string) (*FleetStore, error) { return fleet.OpenStore(dir, nil) }

// SweepRequest describes a scenario grid for Server sweeps and
// FleetSweep: the cross product of applications, geometries,
// significance levels and laggard thresholds.
type SweepRequest = serve.SweepRequest

// SweepRow is one sweep cell's streaming analysis, with federation
// provenance (shard count, workers) when it was computed by a fleet.
type SweepRow = serve.SweepRow

// NewFleet returns a federation coordinator over the given workers. Use
// its Sweep/Strategies to scatter grids across the fleet, or set it as
// ServeOptions.Fleet to make a server's /v1/sweep fan out transparently;
// cmd/earlybirdd -peers and cmd/earlybird -fleet are the packaged forms.
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.New(opts) }

// FleetSweep runs one sweep request across the fleet of workers at the
// given base URLs and returns the rows in grid order. It probes the
// workers first and fails if none is healthy; per-cell failures are
// reported on the rows. The merged results are bit-identical to
// single-node execution for every exact metric.
func FleetSweep(ctx context.Context, peers []string, req SweepRequest) ([]SweepRow, error) {
	f, err := fleet.New(fleet.Options{Peers: peers})
	if err != nil {
		return nil, err
	}
	if f.Probe(ctx) == 0 {
		return nil, fmt.Errorf("earlybird: no healthy fleet workers among %v", peers)
	}
	var rows []SweepRow
	err = f.Sweep(ctx, req, func(r SweepRow) { rows = append(rows, r) })
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	return rows, nil
}

// Serve runs the study service on addr until ctx is cancelled, then
// drains in-flight requests gracefully (without a deadline — wrap
// Shutdown yourself via NewServer for a bounded drain, as cmd/earlybirdd
// does). It returns nil after a clean drain, or the listener error.
func Serve(ctx context.Context, addr string, opts ServeOptions) error {
	srv := serve.New(opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		return err
	}
	// A clean drain surfaces as ErrServerClosed; anything else is a
	// listener failure that raced the cancellation.
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Scenario is a declarative campaign: sources (application models or
// trace replays) crossed with geometry, noise, DLB-policy, fabric and
// timeout axes, compiled to engine campaign cells with a verifier that
// proves the compiled campaign covers exactly the declared
// cross-product. See internal/scenario for the file format.
type Scenario = scenario.Spec

// ScenarioSource is one workload of a scenario: a built-in application
// model, a trace CSV on disk, or an inline trace CSV.
type ScenarioSource = scenario.Source

// CompiledScenario is the campaign a scenario compiles to; its Verify
// proves coverage and its EngineSpecs feed RunCampaign or Engine.Run.
type CompiledScenario = scenario.Compiled

// ScenarioCell is one compiled campaign point: declared coordinates
// plus the engine spec they compile to.
type ScenarioCell = scenario.Cell

// ScenarioCoverage is the verifier's accounting: cells checked, cells
// per source, and unique studies after dedup.
type ScenarioCoverage = scenario.Coverage

// ScenarioCompileOptions parameterises scenario compilation (trace
// loading, base directory for relative trace paths).
type ScenarioCompileOptions = scenario.CompileOptions

// ParseScenario reads a scenario document — YAML subset or JSON — into
// a validated Scenario.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }
