// Package earlybird reproduces the measurement and feasibility study of
// "Measuring Thread Timing to Assess the Feasibility of Early-bird
// Message Delivery" (Marts et al., 2023): per-thread timing
// instrumentation of fork/join compute regions, statistical analysis of
// thread-arrival distributions, and evaluation of early-bird partitioned
// message delivery against the measured arrivals.
//
// Quick start:
//
//	study, err := earlybird.NewStudy(earlybird.Options{App: "minife"})
//	if err != nil { ... }
//	fmt.Println(study.Metrics())                       // Section 4.2 scalars
//	fmt.Println(study.Table1())                        // Table 1 row
//	a := study.Feasibility(1<<20, earlybird.OmniPath(), 1e-3)
//	fmt.Println(a.Recommendation)                      // Section 5 verdict
//
// The heavy lifting lives in the internal packages (omp, trace, workload,
// cluster, stats/normality, partcomm, analysis, experiments); this
// package is the stable facade.
package earlybird

import (
	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/network"
	"earlybird/internal/trace"
)

// Study is a collected thread-timing dataset plus analysis configuration.
type Study = core.Study

// Options configures NewStudy.
type Options = core.Options

// Assessment is an early-bird feasibility verdict.
type Assessment = core.Assessment

// Recommendation classifies how an application should employ early-bird
// communication (Section 5 of the paper).
type Recommendation = core.Recommendation

// Recommendation values.
const (
	RecommendTimeoutFlush  = core.RecommendTimeoutFlush
	RecommendFineGrained   = core.RecommendFineGrained
	RecommendSophisticated = core.RecommendSophisticated
)

// Geometry is a study size (trials x ranks x iterations x threads).
type Geometry = cluster.Config

// Fabric is an alpha-beta interconnect parameterisation for feasibility
// evaluation.
type Fabric = network.Fabric

// Dataset is the raw compute-time tensor of a study.
type Dataset = trace.Dataset

// AppMetrics holds the Section 4.2 scalar metrics of a study.
type AppMetrics = analysis.AppMetrics

// NewStudy runs a study with the given options.
func NewStudy(opts Options) (*Study, error) { return core.NewStudy(opts) }

// FromDataset wraps a previously collected dataset.
func FromDataset(d *Dataset) (*Study, error) { return core.FromDataset(d) }

// PaperGeometry returns the paper's configuration: 10 trials, 8 ranks,
// 200 iterations, 48 threads.
func PaperGeometry() Geometry { return cluster.DefaultConfig() }

// QuickGeometry returns a reduced configuration for experimentation.
func QuickGeometry() Geometry { return cluster.SmallConfig() }

// OmniPath returns the interconnect parameters representative of the
// paper's testbed fabric.
func OmniPath() Fabric { return network.OmniPath() }
